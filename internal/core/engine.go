package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/ppr"
	"kgvote/internal/vote"
)

// Engine optimizes a knowledge graph from user votes. It owns the graph it
// was created with and mutates it in place as votes are applied; use
// graph.Clone before constructing the engine to preserve the original.
//
// An Engine is not safe for concurrent use by multiple writers, but it
// publishes an immutable, epoch-stamped GraphSnapshot (see Serving) that
// any number of goroutines may read concurrently while the single writer
// keeps optimizing: the snapshot is republished after every batch of
// weight changes.
type Engine struct {
	g      *graph.Graph
	opt    Options
	scorer *pathidx.Scorer

	// epoch counts snapshot publications; it is written only by the
	// engine's single writer and read through the published snapshot.
	epoch   uint64
	serving atomic.Pointer[GraphSnapshot]

	// metrics, when non-nil, receives solve instrumentation (nil-safe;
	// see SetMetrics).
	metrics *Metrics

	// clusterSolver, when non-nil, replaces the in-process solve of each
	// split-and-merge cluster program (see SetClusterSolver); the solve
	// farm's dispatcher plugs in here.
	clusterSolver ClusterSolver

	// push, set when Options.Scorer == pathidx.BackendPush, is the
	// incremental local-push tracker shared across snapshot generations;
	// publish repairs it from each flush's changed-edge delta.
	push *ppr.Incremental

	// progPool recycles sgp.Program workspaces across solves (the
	// split-and-merge path builds one program per cluster per flush).
	progPool sync.Pool
}

// New returns an engine over g. Zero-valued option fields take the
// paper's defaults.
func New(g *graph.Graph, opt Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	sc, err := pathidx.NewScorer(g, opt.pathOptions())
	if err != nil {
		return nil, err
	}
	e := &Engine{g: g, opt: opt, scorer: sc}
	if opt.Scorer == pathidx.BackendPush {
		e.push, err = ppr.NewIncremental(opt.pushOptions(), opt.PushMaxTracked)
		if err != nil {
			return nil, err
		}
	}
	if err := e.publish(nil); err != nil {
		return nil, err
	}
	return e, nil
}

// PushStats snapshots the incremental push tracker's counters; ok is
// false when the engine serves with the enumerator backend.
func (e *Engine) PushStats() (ppr.IncrementalStats, bool) {
	if e.push == nil {
		return ppr.IncrementalStats{}, false
	}
	return e.push.Stats(), true
}

// Graph returns the engine's (mutable) graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opt }

// Similarity evaluates S(vq, va) with the truncated extended inverse
// P-distance.
func (e *Engine) Similarity(q, a graph.NodeID) (float64, error) {
	return e.scorer.Similarity(q, a)
}

// Rank returns the top-K ranked answer list for a query.
func (e *Engine) Rank(q graph.NodeID, answers []graph.NodeID) ([]pathidx.Ranked, error) {
	return e.scorer.Rank(q, answers, e.opt.K)
}

// RankAll ranks every answer (not just the top K); used by evaluation.
func (e *Engine) RankAll(q graph.NodeID, answers []graph.NodeID) ([]pathidx.Ranked, error) {
	return e.scorer.Rank(q, answers, 0)
}

// RankOf returns the 1-based position of answer among answers for query,
// under the current graph.
func (e *Engine) RankOf(q, answer graph.NodeID, answers []graph.NodeID) (int, error) {
	ranked, err := e.RankAll(q, answers)
	if err != nil {
		return 0, err
	}
	for i, r := range ranked {
		if r.Node == answer {
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("core: answer %d not among candidates", answer)
}

// CollectVote runs a query, ranks the answers, and forms the vote implied
// by the user's best choice. It is a convenience wrapper used by examples
// and the CLI.
func (e *Engine) CollectVote(q graph.NodeID, answers []graph.NodeID, best graph.NodeID) (vote.Vote, error) {
	ranked, err := e.Rank(q, answers)
	if err != nil {
		return vote.Vote{}, err
	}
	list := make([]graph.NodeID, len(ranked))
	for i, r := range ranked {
		list[i] = r.Node
	}
	return vote.FromRanking(q, list, best)
}

// applyWeights writes solved variable values back into the graph,
// normalizes the touched source nodes per the configured mode, and
// republishes the serving snapshot — every optimization batch ends here,
// so the published epoch advances monotonically with each solve. It
// returns the final post-normalization weight of every touched edge (see
// Report.Applied) so callers can persist the solve's effect.
func (e *Engine) applyWeights(changes map[graph.EdgeKey]float64) ([]WeightChange, error) {
	if len(changes) == 0 {
		// Nothing changed, but the epoch still advances: an empty
		// non-nil delta tells publish it may retain everything.
		return nil, e.publish([]WeightChange{})
	}
	preSums := make(map[graph.NodeID]float64)
	for k := range changes {
		if _, ok := preSums[k.From]; !ok {
			preSums[k.From] = e.g.OutWeightSum(k.From)
		}
	}
	for k, w := range changes {
		if err := e.g.SetWeight(k.From, k.To, w); err != nil {
			return nil, fmt.Errorf("core: apply weights: %w", err)
		}
	}
	switch e.opt.Normalize {
	case NoNormalize:
	case UnitSum:
		for n := range preSums {
			e.g.NormalizeOut(n)
		}
	case CapSum:
		for n, pre := range preSums {
			// The solve must not grow a node's out-mass beyond what the
			// graph already granted it: cap at max(1, pre-solve sum).
			// Graphs built with super-stochastic nodes (e.g. weight-1
			// answer attachment) keep their shape; reductions always stand.
			target := pre
			if target < 1 {
				target = 1
			}
			cur := e.g.OutWeightSum(n)
			if cur <= target {
				continue
			}
			scale := target / cur
			for _, edge := range e.g.Out(n) {
				if err := e.g.SetWeight(n, edge.To, edge.Weight*scale); err != nil {
					return nil, fmt.Errorf("core: normalize: %w", err)
				}
			}
		}
	}
	applied := e.appliedWeights(changes, preSums)
	return applied, e.publish(applied)
}

// appliedWeights collects the final weights of every edge a solve could
// have modified: under NoNormalize exactly the solved edges, otherwise
// every out-edge of each normalized source node (normalization rescales
// siblings of solved edges too). Order is deterministic.
func (e *Engine) appliedWeights(changes map[graph.EdgeKey]float64, preSums map[graph.NodeID]float64) []WeightChange {
	if e.opt.Normalize == NoNormalize {
		out := make([]WeightChange, 0, len(changes))
		for k := range changes {
			out = append(out, WeightChange{From: k.From, To: k.To, Weight: e.g.Weight(k.From, k.To)})
		}
		sortWeightChanges(out)
		return out
	}
	nodes := make([]graph.NodeID, 0, len(preSums))
	for n := range preSums {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var out []WeightChange
	for _, n := range nodes {
		for _, edge := range e.g.Out(n) {
			out = append(out, WeightChange{From: n, To: edge.To, Weight: edge.Weight})
		}
	}
	return out
}

func sortWeightChanges(ws []WeightChange) {
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].From != ws[j].From {
			return ws[i].From < ws[j].From
		}
		return ws[i].To < ws[j].To
	})
}

// ApplyWeightSet writes a list of absolute edge weights into the graph —
// no solving, no normalization — and republishes the serving snapshot.
// It is the crash-recovery fast path: replaying the WeightChange lists a
// stream logged per flush reproduces the post-flush graph exactly,
// because each list already carries final post-normalization values.
func (e *Engine) ApplyWeightSet(ws []WeightChange) error {
	for _, wc := range ws {
		if err := e.g.SetWeight(wc.From, wc.To, wc.Weight); err != nil {
			return fmt.Errorf("core: apply weight set: %w", err)
		}
	}
	return e.publish(ws)
}
