package core

import (
	"time"

	"kgvote/internal/ppr"
	"kgvote/internal/telemetry"
)

// Metrics is the engine's optimization-path instrumentation: the hot
// stages the paper makes expensive — per-batch SGP solves and
// split-and-merge clustering — surfaced as registry series. All fields
// and methods are nil-safe, so an engine without metrics pays nothing.
type Metrics struct {
	// FlushSeconds times complete batch solves (judgment filter + encode
	// + SGP + weight application + snapshot republication).
	FlushSeconds *telemetry.Histogram
	// Flushes counts completed batch solves.
	Flushes *telemetry.Counter
	// VotesEncoded / VotesDiscarded split each batch by the judgment
	// algorithm's verdict (Section V).
	VotesEncoded   *telemetry.Counter
	VotesDiscarded *telemetry.Counter
	// VotesQuarantined counts votes excluded from flushes because their
	// voter was quarantined by the installed VoterPolicy.
	VotesQuarantined *telemetry.Counter
	// OuterIters / InnerIters accumulate SGP solver iterations.
	OuterIters *telemetry.Counter
	InnerIters *telemetry.Counter
	// ClusterSize records the vote count of each split-and-merge
	// affinity-propagation cluster.
	ClusterSize *telemetry.Histogram
	// EnumCacheHits / EnumCacheMisses count per-flush walk-enumeration
	// cache outcomes; misses equal the Enumerate DFS runs actually paid.
	EnumCacheHits   *telemetry.Counter
	EnumCacheMisses *telemetry.Counter
	// StageEnum through StageMerge time the flush pipeline's stages
	// (kgvote_core_flush_stage_seconds{stage=...}).
	StageEnum    *telemetry.Histogram
	StageJudge   *telemetry.Histogram
	StageCluster *telemetry.Histogram
	StageSolve   *telemetry.Histogram
	StageMerge   *telemetry.Histogram
	// PushUpdateSeconds times the per-publish incremental push repair
	// (BackendPush only); PushUpdatePushes counts the push operations
	// those repairs performed.
	PushUpdateSeconds *telemetry.Histogram
	PushUpdatePushes  *telemetry.Counter
	// RankCacheRetained / RankCacheDropped count cached rankings carried
	// into (or invalidated out of) each republished snapshot by the
	// delta-aware retention rule.
	RankCacheRetained *telemetry.Counter
	RankCacheDropped  *telemetry.Counter
}

// NewMetrics registers the engine series in reg (nil reg = nil
// metrics, all observations dropped).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		FlushSeconds: reg.Histogram("kgvote_core_flush_seconds",
			"Duration of one optimization batch solve (filter, encode, SGP, apply).", nil, nil),
		Flushes: reg.Counter("kgvote_core_flushes_total",
			"Completed optimization batch solves.", nil),
		VotesEncoded: reg.Counter("kgvote_core_votes_encoded_total",
			"Votes that produced SGP constraints.", nil),
		VotesDiscarded: reg.Counter("kgvote_core_votes_discarded_total",
			"Votes dropped by the judgment algorithm.", nil),
		VotesQuarantined: reg.Counter("kgvote_votes_quarantined_total",
			"Votes excluded from flushes because their voter was quarantined.", nil),
		OuterIters: reg.Counter("kgvote_core_sgp_outer_iterations_total",
			"SGP solver outer iterations.", nil),
		InnerIters: reg.Counter("kgvote_core_sgp_inner_iterations_total",
			"SGP solver inner iterations.", nil),
		ClusterSize: reg.Histogram("kgvote_core_cluster_size_votes",
			"Votes per split-and-merge affinity-propagation cluster.", nil, telemetry.CountBuckets),
		EnumCacheHits: reg.Counter("kgvote_enum_cache_hits_total",
			"Walk-enumeration cache lookups served without re-running the DFS.", nil),
		EnumCacheMisses: reg.Counter("kgvote_enum_cache_misses_total",
			"Walk-enumeration cache lookups that ran the Enumerate DFS.", nil),
		StageEnum:    stageHistogram(reg, "enumerate"),
		StageJudge:   stageHistogram(reg, "judge"),
		StageCluster: stageHistogram(reg, "cluster"),
		StageSolve:   stageHistogram(reg, "solve"),
		StageMerge:   stageHistogram(reg, "merge"),
		PushUpdateSeconds: reg.Histogram("kgvote_ppr_update_seconds",
			"Duration of one incremental push repair at snapshot republish.", nil, nil),
		PushUpdatePushes: reg.Counter("kgvote_ppr_update_pushes_total",
			"Push operations performed by per-flush incremental repairs.", nil),
		RankCacheRetained: reg.Counter("kgvote_core_rank_cache_retained_total",
			"Cached rankings carried across snapshot republishes by delta-aware retention.", nil),
		RankCacheDropped: reg.Counter("kgvote_core_rank_cache_dropped_total",
			"Cached rankings invalidated at republish because a seed could reach a changed edge.", nil),
	}
}

// stageHistogram registers one flush-pipeline stage latency series.
func stageHistogram(reg *telemetry.Registry, stage string) *telemetry.Histogram {
	return reg.Histogram("kgvote_core_flush_stage_seconds",
		"Wall-clock duration of one flush pipeline stage.",
		telemetry.Labels{"stage": stage}, nil)
}

// SetMetrics wires the engine's (and its streams') instrumentation;
// call it once after construction, before serving. nil disables.
func (e *Engine) SetMetrics(m *Metrics) { e.metrics = m }

// startFlush begins timing a batch solve.
func (m *Metrics) startFlush() func() {
	if m == nil {
		return func() {}
	}
	return m.FlushSeconds.Start()
}

// observeReport folds one solve report into the counters.
func (m *Metrics) observeReport(rep *Report) {
	if m == nil || rep == nil {
		return
	}
	m.Flushes.Inc()
	m.VotesEncoded.Add(int64(rep.Encoded))
	m.VotesDiscarded.Add(int64(rep.Discarded))
	m.VotesQuarantined.Add(int64(rep.Quarantined))
	m.OuterIters.Add(int64(rep.Outer))
	m.InnerIters.Add(int64(rep.InnerIters))
}

// observeCluster records one split-and-merge cluster's vote count.
func (m *Metrics) observeCluster(size int) {
	if m == nil {
		return
	}
	m.ClusterSize.Observe(float64(size))
}

// observePushUpdate records one publish-time incremental repair.
func (m *Metrics) observePushUpdate(d time.Duration, rep ppr.UpdateReport) {
	if m == nil {
		return
	}
	m.PushUpdateSeconds.Observe(d.Seconds())
	m.PushUpdatePushes.Add(rep.Pushes)
}

// observeRankCacheCarry records one republish's retention outcome.
func (m *Metrics) observeRankCacheCarry(retained, dropped int) {
	if m == nil {
		return
	}
	m.RankCacheRetained.Add(int64(retained))
	m.RankCacheDropped.Add(int64(dropped))
}

// observeFlushStages publishes a flush report's stage durations and
// enumeration-cache counters.
func (m *Metrics) observeFlushStages(rep *Report) {
	if m == nil || rep == nil {
		return
	}
	m.EnumCacheHits.Add(int64(rep.EnumCacheHits))
	m.EnumCacheMisses.Add(int64(rep.EnumCacheMisses))
	m.StageEnum.Observe(rep.EnumSeconds)
	m.StageJudge.Observe(rep.JudgeSeconds)
	m.StageCluster.Observe(rep.ClusterSeconds)
	m.StageSolve.Observe(rep.SolveSeconds)
	m.StageMerge.Observe(rep.MergeSeconds)
}
