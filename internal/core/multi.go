package core

import (
	"fmt"

	"kgvote/internal/sgp"
	"kgvote/internal/vote"
)

// SolveMulti is the multi-vote solution of Section V: the judgment
// algorithm first discards votes that can never be satisfied; the
// remaining negative AND positive votes are encoded into one SGP with a
// deviation variable per constraint and the sigmoid objective of Equation
// (19); one solve adjusts all edge weights at once, letting the solver
// arbitrate conflicts between votes.
func (e *Engine) SolveMulti(votes []vote.Vote) (*Report, error) {
	report := &Report{Votes: len(votes), Clusters: 1}
	kept, discarded, err := e.filterVotes(votes)
	if err != nil {
		return nil, err
	}
	report.Discarded = len(discarded)
	if len(kept) == 0 {
		return report, nil
	}
	p := e.newProgram()
	for i, v := range kept {
		n, err := e.encodeVote(p, v, true)
		if err != nil {
			return nil, fmt.Errorf("core: multi-vote %d: %w", i, err)
		}
		report.Constraints += n
		report.Encoded++
	}
	e.addCapacityConstraints(p)
	sol, err := p.Solve(sgp.SolveOptions{Mode: e.opt.Mode, AL: e.opt.AL})
	if err != nil {
		return nil, err
	}
	report.Variables = p.NumVars()
	// Vote constraints are the soft ones; hard constraints are node
	// capacity bounds.
	for _, ok := range sol.SoftSatisfied {
		if ok {
			report.Satisfied++
		}
	}
	report.Outer = sol.Outer
	report.InnerIters = sol.InnerIters
	report.ChangedEdges = countChanged(p, sol.X)
	applied, err := e.applyWeights(extractChanges(p, sol.X))
	report.Applied = applied
	return report, err
}
