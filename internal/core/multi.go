package core

import (
	"context"
	"fmt"
	"time"

	"kgvote/internal/signomial"
	"kgvote/internal/vote"
)

// SolveMulti is the multi-vote solution of Section V: the judgment
// algorithm first discards votes that can never be satisfied; the
// remaining negative AND positive votes are encoded into one SGP with a
// deviation variable per constraint and the sigmoid objective of Equation
// (19); one solve adjusts all edge weights at once, letting the solver
// arbitrate conflicts between votes.
//
// The flush pipeline enumerates each query's walk sets exactly once (a
// shared per-flush cache feeds judgment and encoding) and fans the
// judgment filter out over Options.Workers.
func (e *Engine) SolveMulti(votes []vote.Vote) (*Report, error) {
	return e.SolveMultiCtx(context.Background(), votes)
}

// SolveMultiCtx is SolveMulti with deadline propagation: a context
// cancelled before the SGP solve starts aborts with the context error
// (nothing applied); cancelled mid-solve it stops the solver's iterations
// and applies the best-so-far weight set, marking the report Partial.
func (e *Engine) SolveMultiCtx(ctx context.Context, votes []vote.Vote) (*Report, error) {
	// One program covers the whole batch, so any returned report consumed
	// every vote (a mid-solve stop still applies best-so-far for all).
	report := &Report{Votes: len(votes), Clusters: 1, Consumed: len(votes)}

	tEnum := time.Now()
	fc, err := e.newFlushEnum(votes)
	if err != nil {
		return nil, err
	}
	report.EnumSeconds = time.Since(tEnum).Seconds()
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: multi-vote flush cancelled before judgment: %w", err)
	}

	tJudge := time.Now()
	kept, discarded, err := e.filterVotes(votes, fc)
	if err != nil {
		return nil, err
	}
	report.JudgeSeconds = time.Since(tJudge).Seconds()
	report.Discarded = len(discarded)
	report.KeptVotes, report.RejectedVotes = kept, discarded
	if len(kept) == 0 {
		e.finishFlush(report, fc)
		return report, nil
	}
	if err := ctxErr(ctx); err != nil {
		return nil, fmt.Errorf("core: multi-vote flush cancelled before solve: %w", err)
	}

	tSolve := time.Now()
	p := e.newProgram()
	b := &signomial.Builder{}
	for i, v := range kept {
		n, err := e.encodeVote(p, v, true, fc, b)
		if err != nil {
			return nil, fmt.Errorf("core: multi-vote %d: %w", i, err)
		}
		report.Constraints += n
		report.Encoded++
	}
	e.addCapacityConstraints(p)
	// The whole-batch program goes through the cluster solver like any
	// split-and-merge cluster: an injected farm dispatcher ships it to a
	// worker (freeing the writer's cores), the default solves in process.
	sol, err := e.solver().SolveProgram(ctx, p, e.solveParams())
	if err != nil {
		return nil, err
	}
	report.Partial = sol.Stopped
	report.Variables = p.NumVars()
	// Vote constraints are the soft ones; hard constraints are node
	// capacity bounds.
	for _, ok := range sol.SoftSatisfied {
		if ok {
			report.Satisfied++
		}
	}
	report.Outer = sol.Outer
	report.InnerIters = sol.InnerIters
	report.ChangedEdges = countChanged(p, sol.X)
	changes := extractChanges(p, sol.X)
	e.putProgram(p)
	report.SolveSeconds = time.Since(tSolve).Seconds()

	tMerge := time.Now()
	applied, err := e.applyWeights(changes)
	report.Applied = applied
	report.MergeSeconds = time.Since(tMerge).Seconds()
	e.finishFlush(report, fc)
	return report, err
}

// finishFlush folds the flush's enumeration-cache counters into the
// report and publishes the pipeline's stage telemetry.
func (e *Engine) finishFlush(report *Report, fc *flushEnum) {
	report.EnumCacheHits, report.EnumCacheMisses = fc.stats()
	e.metrics.observeFlushStages(report)
}
