package core

import (
	"context"
	"errors"
	"fmt"

	"kgvote/internal/vote"
)

// StreamSolver selects the batch solver a Stream applies.
type StreamSolver int

const (
	// StreamMulti applies SolveMulti per batch.
	StreamMulti StreamSolver = iota
	// StreamSplitMerge applies SolveSplitMerge per batch.
	StreamSplitMerge
	// StreamSingle applies SolveSingle per batch.
	StreamSingle
)

// VoterPolicy lets a reputation tracker gate the flush path. Quarantine
// is consulted once per pending vote at flush time — votes whose voter is
// quarantined are excluded from the solve (counted in Report.Quarantined,
// consumed, never requeued) — and ObserveJudgment feeds the judgment
// filter's per-vote verdicts back so rejections cost reputation.
// Implementations must be safe for concurrent use; vote.Reputation
// satisfies this interface.
type VoterPolicy interface {
	Quarantine(voter string) bool
	ObserveJudgment(voter string, rejected bool)
}

// Stream processes votes online, the interactive deployment mode the
// paper's framework implies: votes arrive one at a time and the graph is
// re-optimized whenever a full batch has accumulated. Between flushes the
// engine keeps serving rankings from the current graph.
//
// A Stream is not safe for concurrent use (it shares the engine).
type Stream struct {
	e       *Engine
	batch   int
	solver  StreamSolver
	pending []vote.Vote
	policy  VoterPolicy
	// Flushes counts completed batch solves; TotalVotes counts every vote
	// accepted (pending included).
	Flushes    int
	TotalVotes int
}

// NewStream returns a stream over the engine that flushes every batchSize
// votes.
func (e *Engine) NewStream(batchSize int, solver StreamSolver) (*Stream, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("core: stream batch size %d must be >= 1", batchSize)
	}
	switch solver {
	case StreamMulti, StreamSplitMerge, StreamSingle:
	default:
		return nil, fmt.Errorf("core: unknown stream solver %d", solver)
	}
	return &Stream{e: e, batch: batchSize, solver: solver}, nil
}

// SetVoterPolicy installs (or, with nil, removes) the reputation gate
// consulted by FlushCtx. Call it before serving; quarantine decisions use
// the policy's state as of each flush, so votes accepted while a voter
// was in good standing are still excluded if the voter is quarantined by
// the time the batch solves.
func (s *Stream) SetVoterPolicy(p VoterPolicy) { s.policy = p }

// Pending returns the number of buffered votes awaiting the next flush.
func (s *Stream) Pending() int { return len(s.pending) }

// PendingVotes returns a copy of the buffered votes (checkpointing reads
// it to know what the WAL tail must preserve).
func (s *Stream) PendingVotes() []vote.Vote {
	return append([]vote.Vote(nil), s.pending...)
}

// Restore primes a fresh stream with recovered state: votes that were
// accepted but not yet flushed before a crash, plus the lifetime
// counters. It does not trigger a solve even if the buffer is at or over
// the batch size — the recovery manager decides whether to flush after
// replay — and must be called before the first Push.
func (s *Stream) Restore(pending []vote.Vote, totalVotes, flushes int) error {
	if s.TotalVotes != 0 || s.Flushes != 0 || len(s.pending) != 0 {
		return fmt.Errorf("core: stream restore: stream already used (%d votes, %d flushes)", s.TotalVotes, s.Flushes)
	}
	for i, v := range pending {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("core: stream restore: vote %d: %w", i, err)
		}
	}
	s.pending = append(s.pending, pending...)
	s.TotalVotes = totalVotes
	s.Flushes = flushes
	return nil
}

// Push adds a vote. When the batch fills, the batch is solved immediately
// and its report returned; otherwise the report is nil.
func (s *Stream) Push(v vote.Vote) (*Report, error) {
	return s.PushCtx(context.Background(), v)
}

// PushCtx is Push with deadline propagation into the inline flush it may
// trigger (see FlushCtx for the cancellation contract).
func (s *Stream) PushCtx(ctx context.Context, v vote.Vote) (*Report, error) {
	if err := s.PushQueue(v); err != nil {
		return nil, err
	}
	if len(s.pending) < s.batch {
		return nil, nil
	}
	return s.FlushCtx(ctx)
}

// PushQueue buffers a vote without ever triggering a flush, even when the
// batch threshold is reached. Servers running a background flusher use it
// so the vote-accept path never blocks on a solve; pair with NeedsFlush to
// decide when to wake the flusher.
func (s *Stream) PushQueue(v vote.Vote) error {
	if err := v.Validate(); err != nil {
		return fmt.Errorf("core: stream push: %w", err)
	}
	s.pending = append(s.pending, v)
	s.TotalVotes++
	return nil
}

// NeedsFlush reports whether the buffer has reached the batch threshold.
func (s *Stream) NeedsFlush() bool { return len(s.pending) >= s.batch }

// Flush solves whatever votes are buffered (a no-op returning nil when the
// buffer is empty) and clears the buffer.
func (s *Stream) Flush() (*Report, error) {
	return s.FlushCtx(context.Background())
}

// FlushCtx is Flush with deadline propagation. A context cancelled before
// the solve applies anything returns the context error with the votes
// restored to the buffer (retry later loses nothing); cancellation
// mid-solve applies the solver's best-so-far weights and returns a report
// marked Partial. A partial single-vote flush may have processed only a
// prefix of the batch (Report.Consumed < Votes); the unprocessed
// remainder is requeued at the head of the buffer, so only votes whose
// weights are actually live are ever consumed.
func (s *Stream) FlushCtx(ctx context.Context) (*Report, error) {
	if len(s.pending) == 0 {
		return nil, nil
	}
	votes := s.pending
	s.pending = nil
	active, quarantined := votes, 0
	if s.policy != nil {
		active, quarantined = s.partitionQuarantined(votes)
	}
	if len(active) == 0 {
		// The whole batch was quarantined: no solve, but the flush still
		// completes (the votes are consumed and the WAL boundary advances).
		rep := &Report{Votes: len(votes), Quarantined: quarantined, Consumed: len(votes)}
		s.e.metrics.observeReport(rep)
		s.Flushes++
		return rep, nil
	}
	stop := s.e.metrics.startFlush()
	var (
		rep *Report
		err error
	)
	switch s.solver {
	case StreamMulti:
		rep, err = s.e.SolveMultiCtx(ctx, active)
	case StreamSplitMerge:
		rep, err = s.e.SolveSplitMergeCtx(ctx, active)
	case StreamSingle:
		rep, err = s.e.SolveSingleCtx(ctx, active)
	}
	stop()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Pre-solve cancellation: nothing was applied, so the votes
			// (quarantined ones included — nothing was dropped yet) go
			// back in arrival order ahead of anything pushed since.
			s.pending = append(votes, s.pending...)
		}
		return nil, err
	}
	if rep.Consumed > 0 && rep.Consumed < len(active) {
		// Mid-batch cancellation (single-vote solver): the tail was never
		// applied; requeue it ahead of anything pushed since. The full
		// slice expression forces append to copy instead of clobbering
		// the backing array.
		rest := active[rep.Consumed:len(active):len(active)]
		s.pending = append(rest, s.pending...)
	}
	if s.policy != nil {
		for _, v := range rep.RejectedVotes {
			s.policy.ObserveJudgment(v.Voter, true)
		}
		for _, v := range rep.KeptVotes {
			s.policy.ObserveJudgment(v.Voter, false)
		}
		// Quarantined votes were dropped for good: they count as supplied
		// and consumed so callers' requeue logic stays consistent.
		rep.Votes = len(votes)
		rep.Quarantined = quarantined
		rep.Consumed += quarantined
	}
	s.e.metrics.observeReport(rep)
	s.Flushes++
	return rep, nil
}

// partitionQuarantined splits the batch by the policy's current verdict,
// preserving arrival order among the kept votes. Anonymous votes are
// never quarantined (VoterPolicy implementations must return false for
// the empty voter, and vote.Reputation does).
func (s *Stream) partitionQuarantined(votes []vote.Vote) (active []vote.Vote, quarantined int) {
	// Per-batch memoization: one policy call per distinct voter.
	verdicts := make(map[string]bool)
	for _, v := range votes {
		q, ok := verdicts[v.Voter]
		if !ok {
			q = v.Voter != "" && s.policy.Quarantine(v.Voter)
			verdicts[v.Voter] = q
		}
		if q {
			quarantined++
		} else {
			active = append(active, v)
		}
	}
	if quarantined == 0 {
		return votes, 0
	}
	return active, quarantined
}
