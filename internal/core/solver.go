package core

import (
	"context"

	"kgvote/internal/sgp"
)

// ClusterSolver abstracts the optimization of one finished SGP — a
// split-and-merge cluster's program, the multi-vote whole-batch program,
// or a single vote's program.
// The engine builds each SGP on the writer (walk enumeration,
// judgment, encoding all need the graph); the ClusterSolver only has to
// optimize the finished, self-contained program — which is why a remote
// implementation (internal/solvefarm) can ship the program to a stateless
// worker that holds no copy of the graph.
//
// Determinism contract: for a given program and params every
// implementation must return the same Solution.X bit-for-bit as the
// in-process p.Solve, so local, remote, retried, and hedged solves are
// interchangeable and the merged flush output stays byte-identical. The
// only sanctioned deviation is under ctx cancellation, where best-so-far
// iterates (Solution.Stopped) are acceptable.
//
// Implementations must be safe for concurrent use: the split-and-merge
// flush calls SolveProgram from Options.Workers goroutines at once.
type ClusterSolver interface {
	SolveProgram(ctx context.Context, p *sgp.Program, params sgp.Params) (*sgp.Solution, error)
}

// localClusterSolver runs the solve in process — the default, and the
// fallback every remote dispatcher degrades to.
type localClusterSolver struct{}

func (localClusterSolver) SolveProgram(ctx context.Context, p *sgp.Program, params sgp.Params) (*sgp.Solution, error) {
	return p.Solve(sgp.SolveOptions{Mode: params.Mode, AL: params.AL, Stop: stopFunc(ctx)})
}

// LocalSolver returns the in-process ClusterSolver the engine uses when
// none is injected.
func LocalSolver() ClusterSolver { return localClusterSolver{} }

// SetClusterSolver injects the solver used for split-and-merge cluster
// programs (nil restores the in-process default). Call it once after
// construction, before serving — it is read concurrently by flushes.
func (e *Engine) SetClusterSolver(cs ClusterSolver) { e.clusterSolver = cs }

// solver resolves the effective cluster solver.
func (e *Engine) solver() ClusterSolver {
	if e.clusterSolver != nil {
		return e.clusterSolver
	}
	return localClusterSolver{}
}

// solveParams projects the engine options onto the serializable solve
// parameters a ClusterSolver receives.
func (e *Engine) solveParams() sgp.Params {
	return sgp.Params{Mode: e.opt.Mode, AL: e.opt.AL}
}
