package core

import (
	"sync"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/vote"
)

// runIndexed runs fn(0) … fn(n−1) on min(workers, n) goroutines pulling
// indices from a shared channel — a bounded worker pool, not one
// goroutine per item. Results must be written into index-addressed slots
// by fn so the caller's ordering stays deterministic regardless of
// scheduling; errors are collected per index and the lowest-index error
// is returned. With workers ≤ 1 (or a single item) everything runs
// inline on the calling goroutine.
func runIndexed(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// flushEnum is the per-flush view of the enumeration cache. A nil
// *flushEnum (Options.NoEnumCache, ablation/benchmark baseline) falls
// back to direct enumeration at every call site, reproducing the legacy
// up-to-three-DFS-per-vote behavior.
type flushEnum struct {
	cache *pathidx.EnumCache
}

// paths returns the walks from source to each target, cached per flush.
func (f *flushEnum) paths(e *Engine, source graph.NodeID, targets []graph.NodeID) (map[graph.NodeID][]pathidx.Path, error) {
	if f == nil {
		return pathidx.Enumerate(e.g, source, targets, e.opt.pathOptions())
	}
	return f.cache.Paths(source, targets)
}

// stats reports the cache's hit/miss counters (zero without a cache).
func (f *flushEnum) stats() (hits, misses uint64) {
	if f == nil {
		return 0, 0
	}
	return f.cache.Hits(), f.cache.Misses()
}

// newFlushEnum builds the flush's enumeration cache and prewarms it: one
// entry per distinct query node, enumerated with the union of the ranked
// lists of every vote sharing that query. Every later pipeline stage —
// judgment (best + rival), edge sets (ranked list), encoding (ranked
// list) — asks for a subset of that union, so Enumerate runs exactly
// once per (query, path-options) per flush. Prewarming fans out over
// Options.Workers because the DFS is the most expensive per-vote step.
func (e *Engine) newFlushEnum(votes []vote.Vote) (*flushEnum, error) {
	if e.opt.NoEnumCache {
		return nil, nil
	}
	cache, err := pathidx.NewEnumCache(e.g, e.opt.pathOptions())
	if err != nil {
		return nil, err
	}
	queries := make([]graph.NodeID, 0, len(votes))
	targets := make(map[graph.NodeID][]graph.NodeID, len(votes))
	seen := make(map[graph.NodeID]map[graph.NodeID]bool, len(votes))
	for _, v := range votes {
		ts, ok := seen[v.Query]
		if !ok {
			ts = make(map[graph.NodeID]bool, len(v.Ranked))
			seen[v.Query] = ts
			queries = append(queries, v.Query)
		}
		for _, a := range v.Ranked {
			if !ts[a] {
				ts[a] = true
				targets[v.Query] = append(targets[v.Query], a)
			}
		}
	}
	// Enumeration errors (out-of-range nodes, MaxPaths blowups) are not
	// reported here: the stage that first needs the failed query re-runs
	// the enumeration and surfaces the error with its legacy per-vote
	// context ("judging vote %d: …").
	_ = runIndexed(e.opt.Workers, len(queries), func(i int) error {
		_, _ = cache.Paths(queries[i], targets[queries[i]])
		return nil
	})
	return &flushEnum{cache: cache}, nil
}
