package core

import (
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

// fakePolicy quarantines a fixed voter set and records judgment feedback.
type fakePolicy struct {
	bad      map[string]bool
	rejected []string
	kept     []string
}

func (p *fakePolicy) Quarantine(voter string) bool { return p.bad[voter] }
func (p *fakePolicy) ObserveJudgment(voter string, rejected bool) {
	if rejected {
		p.rejected = append(p.rejected, voter)
	} else {
		p.kept = append(p.kept, voter)
	}
}

func TestStreamQuarantineExcludesVotes(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(2, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	pol := &fakePolicy{bad: map[string]bool{"evil": true}}
	st.SetVoterPolicy(pol)

	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	bad := v
	bad.Voter = "evil"
	good := v
	good.Voter = "good"
	if _, err := st.Push(bad); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Push(good)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("batch-filling push should solve")
	}
	if rep.Votes != 2 || rep.Quarantined != 1 || rep.Consumed != 2 {
		t.Fatalf("votes=%d quarantined=%d consumed=%d, want 2/1/2", rep.Votes, rep.Quarantined, rep.Consumed)
	}
	if st.Pending() != 0 {
		t.Fatalf("quarantined vote requeued: pending=%d", st.Pending())
	}
	// Only the good voter's vote reached the judgment filter.
	if len(pol.kept) != 1 || pol.kept[0] != "good" || len(pol.rejected) != 0 {
		t.Fatalf("judgment feedback kept=%v rejected=%v", pol.kept, pol.rejected)
	}
	if r, _ := e.RankOf(q, y, answers); r != 1 {
		t.Errorf("good voter's vote did not optimize: rank %d", r)
	}
}

func TestStreamQuarantineWholeBatch(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	before := g.Clone()
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(2, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	st.SetVoterPolicy(&fakePolicy{bad: map[string]bool{"evil": true}})

	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	v.Voter = "evil"
	if _, err := st.Push(v); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Push(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("all-quarantined batch should still complete the flush")
	}
	if rep.Votes != 2 || rep.Quarantined != 2 || rep.Consumed != 2 || rep.Encoded != 0 {
		t.Fatalf("report %+v", rep)
	}
	if st.Flushes != 1 || st.Pending() != 0 {
		t.Fatalf("flushes=%d pending=%d", st.Flushes, st.Pending())
	}
	// No solve ran: the graph is untouched.
	before.Edges(func(from, to graph.NodeID, w float64) {
		if got := g.Weight(from, to); got != w {
			t.Errorf("edge %d->%d changed by all-quarantined flush: %v -> %v", from, to, w, got)
		}
	})
}

func TestStreamNoPolicyUnchanged(t *testing.T) {
	g, q, answers := twoAnswer(t)
	y := answers[1]
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.NewStream(1, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	v.Voter = "anyone"
	rep, err := st.Push(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Quarantined != 0 {
		t.Fatalf("report %+v", rep)
	}
}

var _ VoterPolicy = (*vote.Reputation)(nil)
