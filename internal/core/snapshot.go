package core

import (
	"fmt"

	"kgvote/internal/graph"
)

// WeightSnapshot captures every edge weight of the engine's graph at one
// point in time, so a deployment can roll back an optimization batch that
// turned out to hurt its metrics.
type WeightSnapshot struct {
	nodes   int
	weights map[graph.EdgeKey]float64
}

// Snapshot records the current edge weights. Nodes and edges added after
// the snapshot are left untouched by Restore (their weights are not part
// of the snapshot).
func (e *Engine) Snapshot() *WeightSnapshot {
	s := &WeightSnapshot{
		nodes:   e.g.NumNodes(),
		weights: make(map[graph.EdgeKey]float64, e.g.NumEdges()),
	}
	e.g.Edges(func(from, to graph.NodeID, w float64) {
		s.weights[graph.EdgeKey{From: from, To: to}] = w
	})
	return s
}

// Restore writes the snapshot's weights back into the graph and
// republishes the serving snapshot. It fails if any snapshotted edge no
// longer exists (edges are never deleted by the engine, so that indicates
// outside interference).
func (e *Engine) Restore(s *WeightSnapshot) error {
	if s == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	for k, w := range s.weights {
		if err := e.g.SetWeight(k.From, k.To, w); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
	}
	// A rollback rewrites weights wholesale; publish with the delta
	// unknown so caches and push states are rebuilt from scratch.
	return e.publish(nil)
}

// Diff reports the edges whose current weight differs from the snapshot
// by more than tol, mapping each to its (old, new) pair.
func (e *Engine) Diff(s *WeightSnapshot, tol float64) map[graph.EdgeKey][2]float64 {
	out := make(map[graph.EdgeKey][2]float64)
	if s == nil {
		return out
	}
	for k, old := range s.weights {
		now := e.g.Weight(k.From, k.To)
		d := now - old
		if d < 0 {
			d = -d
		}
		if d > tol {
			out[k] = [2]float64{old, now}
		}
	}
	return out
}
