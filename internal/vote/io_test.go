package vote

import (
	"bytes"
	"strings"
	"testing"

	"kgvote/internal/graph"
)

func TestVoteJSONRoundTrip(t *testing.T) {
	votes := []Vote{
		{Kind: Negative, Query: 1, Ranked: []graph.NodeID{10, 11, 12}, Best: 12},
		{Kind: Positive, Query: 2, Ranked: []graph.NodeID{20, 21}, Best: 20},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, votes); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range votes {
		if got[i].Kind != votes[i].Kind || got[i].Query != votes[i].Query || got[i].Best != votes[i].Best {
			t.Errorf("vote %d mismatch: %+v vs %+v", i, got[i], votes[i])
		}
		if len(got[i].Ranked) != len(votes[i].Ranked) {
			t.Errorf("vote %d ranked list lost", i)
		}
	}
}

func TestWriteJSONRejectsInvalid(t *testing.T) {
	bad := []Vote{{Kind: Negative, Ranked: []graph.NodeID{1}, Best: 9}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, bad); err == nil {
		t.Errorf("invalid vote should not serialize")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("[nope")); err == nil {
		t.Errorf("bad JSON should fail")
	}
	// Best not in list: FromRanking rejects it.
	if _, err := ReadJSON(strings.NewReader(`[{"query":1,"ranked":[2,3],"best":9}]`)); err == nil {
		t.Errorf("inconsistent vote should fail")
	}
	// Kind is derived, not trusted from the wire.
	got, err := ReadJSON(strings.NewReader(`[{"query":1,"ranked":[2,3],"best":3}]`))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Kind != Negative {
		t.Errorf("kind should be derived as negative, got %v", got[0].Kind)
	}
}

func TestVoteJSONCarriesWeight(t *testing.T) {
	votes := []Vote{{Kind: Negative, Query: 1, Ranked: []graph.NodeID{10, 11}, Best: 11, Weight: 2.5}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, votes); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Weight != 2.5 {
		t.Errorf("weight lost in round trip: %v", got[0].Weight)
	}
	// Negative weights are rejected on load.
	if _, err := ReadJSON(strings.NewReader(`[{"query":1,"ranked":[2,3],"best":3,"weight":-1}]`)); err == nil {
		t.Errorf("negative weight should fail")
	}
}
