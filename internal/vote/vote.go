// Package vote defines the user-feedback model of the paper (Definition
// 2): positive and negative votes over ranked answer lists, the edge sets
// a vote touches, the Jaccard vote similarity of Equation (20), and the
// judgment algorithm of Section V that filters votes which can never be
// satisfied by re-weighting the graph.
package vote

import (
	"fmt"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
)

// Kind distinguishes positive from negative votes.
type Kind int

const (
	// Negative marks a vote whose best answer is not ranked first.
	Negative Kind = iota
	// Positive confirms the top-ranked answer as the best one.
	Positive
)

func (k Kind) String() string {
	switch k {
	case Negative:
		return "negative"
	case Positive:
		return "positive"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Vote is one unit of user feedback on a ranked answer list.
type Vote struct {
	Kind   Kind
	Query  graph.NodeID
	Ranked []graph.NodeID // the top-k list returned to the user, best-first
	Best   graph.NodeID   // the answer the user voted best
	// Weight is the vote's credibility (Section V motivates conflict
	// handling with "low credible" votes): it scales the vote's share of
	// the satisfaction objective. Zero means 1 (full credibility).
	Weight float64
	// Voter identifies who cast the vote. Empty means anonymous: such
	// votes predate voter tracking (old WAL records) or come from callers
	// that do not attribute feedback, and are exempt from reputation
	// scoring and quarantine.
	Voter string
}

// EffectiveWeight returns Weight with the zero-value default applied.
func (v Vote) EffectiveWeight() float64 {
	if v.Weight == 0 {
		return 1
	}
	return v.Weight
}

// FromRanking builds a vote from a ranked list and the user's choice,
// deriving the kind: choosing the top answer is a positive vote, anything
// else a negative vote.
func FromRanking(query graph.NodeID, ranked []graph.NodeID, best graph.NodeID) (Vote, error) {
	v := Vote{Query: query, Ranked: ranked, Best: best}
	r := v.BestRank()
	if r == 0 {
		return Vote{}, fmt.Errorf("vote: best answer %d not in the ranked list", best)
	}
	if r == 1 {
		v.Kind = Positive
	} else {
		v.Kind = Negative
	}
	return v, nil
}

// BestRank returns the 1-based position of Best inside Ranked, or 0 if
// Best does not appear.
func (v Vote) BestRank() int {
	for i, a := range v.Ranked {
		if a == v.Best {
			return i + 1
		}
	}
	return 0
}

// Validate checks internal consistency.
func (v Vote) Validate() error {
	if len(v.Ranked) == 0 {
		return fmt.Errorf("vote: empty ranked list")
	}
	r := v.BestRank()
	if r == 0 {
		return fmt.Errorf("vote: best answer %d not in ranked list", v.Best)
	}
	if v.Kind == Positive && r != 1 {
		return fmt.Errorf("vote: positive vote but best ranks %d", r)
	}
	if v.Kind == Negative && r == 1 {
		return fmt.Errorf("vote: negative vote but best ranks first")
	}
	if v.Weight < 0 {
		return fmt.Errorf("vote: negative weight %v", v.Weight)
	}
	seen := make(map[graph.NodeID]bool, len(v.Ranked))
	for _, a := range v.Ranked {
		if seen[a] {
			return fmt.Errorf("vote: duplicate answer %d in ranked list", a)
		}
		seen[a] = true
	}
	return nil
}

// EdgeSet returns E(t): the set of edges on any walk of length ≤ opt.L
// from the vote's query to any answer in its ranked list (Section VI-A).
func EdgeSet(g *graph.Graph, v Vote, opt pathidx.Options) (map[graph.EdgeKey]struct{}, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	paths, err := pathidx.Enumerate(g, v.Query, v.Ranked, opt)
	if err != nil {
		return nil, err
	}
	return EdgeSetFromPaths(v, paths), nil
}

// EdgeSetFromPaths computes E(t) from pre-enumerated walks: paths must
// cover every answer in the vote's ranked list (it may cover more — only
// the ranked answers' walks are read, so a cache entry enumerated with a
// wider target set yields the same edge set as a direct enumeration).
func EdgeSetFromPaths(v Vote, paths map[graph.NodeID][]pathidx.Path) map[graph.EdgeKey]struct{} {
	set := make(map[graph.EdgeKey]struct{})
	for _, a := range v.Ranked {
		pathidx.AddEdgeSet(set, paths[a])
	}
	return set
}

// Similarity is the Jaccard similarity of Equation (20):
// |E(ti) ∩ E(tj)| / |E(ti) ∪ E(tj)|. Two empty sets have similarity 0.
func Similarity(a, b map[graph.EdgeKey]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	small, big := a, b
	if len(small) > len(big) {
		small, big = big, small
	}
	inter := 0
	for k := range small {
		if _, ok := big[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
