package vote

import (
	"encoding/json"
	"fmt"
	"io"

	"kgvote/internal/graph"
)

// jsonVote is the serialized form of a Vote. Kind is derived from the
// best answer's position on load, so the format cannot go out of sync.
type jsonVote struct {
	Query  graph.NodeID   `json:"query"`
	Ranked []graph.NodeID `json:"ranked"`
	Best   graph.NodeID   `json:"best"`
	Weight float64        `json:"weight,omitempty"`
}

// WriteJSON writes a vote log as a JSON array.
func WriteJSON(w io.Writer, votes []Vote) error {
	out := make([]jsonVote, len(votes))
	for i, v := range votes {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("vote %d: %w", i, err)
		}
		out[i] = jsonVote{Query: v.Query, Ranked: v.Ranked, Best: v.Best, Weight: v.Weight}
	}
	return json.NewEncoder(w).Encode(out)
}

// ReadJSON reads a vote log written by WriteJSON.
func ReadJSON(r io.Reader) ([]Vote, error) {
	var in []jsonVote
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("vote: decode: %w", err)
	}
	out := make([]Vote, 0, len(in))
	for i, jv := range in {
		v, err := FromRanking(jv.Query, jv.Ranked, jv.Best)
		if err != nil {
			return nil, fmt.Errorf("vote %d: %w", i, err)
		}
		v.Weight = jv.Weight
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("vote %d: %w", i, err)
		}
		out = append(out, v)
	}
	return out, nil
}
