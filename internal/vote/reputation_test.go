package vote

import (
	"fmt"
	"testing"

	"kgvote/internal/graph"
)

func TestReputationAnonymousExempt(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	for i := 0; i < 50; i++ {
		// An anonymous voter stuffing the same ballot never trips anything.
		v := r.Observe("", 1, 2)
		if v.Quarantined || len(v.Reasons) != 0 {
			t.Fatalf("anonymous vote %d penalized: %+v", i, v)
		}
	}
	if r.Quarantine("") {
		t.Fatal("anonymous voter quarantined")
	}
	if s := r.Stats(); s.Voters != 0 {
		t.Fatalf("anonymous voter tracked: %+v", s)
	}
}

func TestReputationHonestVoterStaysClean(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	for q := uint64(0); q < 40; q++ {
		v := r.Observe("honest", q, 5)
		if len(v.Reasons) != 0 || v.Quarantined {
			t.Fatalf("honest vote on query %d penalized: %+v", q, v)
		}
	}
	if got := r.Score("honest"); got != 1 {
		t.Fatalf("honest score = %v, want 1", got)
	}
}

func TestReputationSelfContradictionQuarantines(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	// A spammer flip-flopping its best answer on one query: each repeat
	// with a different answer is a self-contradiction.
	var last Verdict
	for i := 0; i < 6; i++ {
		last = r.Observe("spam", 7, int32ID(i))
	}
	if !last.Quarantined {
		t.Fatalf("flip-flopping voter not quarantined: %+v", last)
	}
	if !r.Quarantine("spam") {
		t.Fatal("Quarantine(spam) = false after flip-flopping")
	}
	if s := r.Stats(); s.SelfContradictions == 0 || s.QuarantinedVoters != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReputationDuplicateStuffingQuarantines(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	var last Verdict
	for i := 0; i < 6; i++ {
		last = r.Observe("stuffer", 3, 9) // same query, same answer, again and again
	}
	if !last.Quarantined {
		t.Fatalf("ballot stuffer not quarantined: %+v", last)
	}
	if s := r.Stats(); s.DuplicateVotes != 5 {
		t.Fatalf("duplicate votes = %d, want 5", s.DuplicateVotes)
	}
}

func TestReputationCrossContradiction(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	// Three distinct voters establish answer 4 on query 11.
	for i := 0; i < 3; i++ {
		r.Observe(fmt.Sprintf("honest-%d", i), 11, 4)
	}
	v := r.Observe("outlier", 11, 8)
	if len(v.Reasons) != 1 || v.Reasons[0] != ReasonCrossContradiction {
		t.Fatalf("outlier verdict: %+v", v)
	}
	// Agreeing with the plurality is rewarded, never penalized.
	v = r.Observe("agreeer", 11, 4)
	if len(v.Reasons) != 0 {
		t.Fatalf("agreeing vote penalized: %+v", v)
	}
	if s := r.Stats(); s.CrossContradictions != 1 {
		t.Fatalf("cross contradictions = %d, want 1", s.CrossContradictions)
	}
}

func TestReputationPluralityWeightedByScore(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	// Ruin a ring member's reputation by stuffing, then have it vote first
	// on a fresh query: its near-zero weight must not establish a
	// plurality that penalizes the honest voter arriving second.
	for i := 0; i < 8; i++ {
		r.Observe("ring", 1, 2)
	}
	if got := r.Score("ring"); got != 0 {
		t.Fatalf("ring score = %v, want 0", got)
	}
	r.Observe("ring", 99, 5) // wrong answer, first on the query
	v := r.Observe("honest", 99, 6)
	if len(v.Reasons) != 0 {
		t.Fatalf("honest vote penalized by zero-weight plurality: %+v", v)
	}
}

func TestReputationJudgmentFeedback(t *testing.T) {
	cfg := ReputationConfig{}.withDefaults()
	r := NewReputation(ReputationConfig{})
	for q := uint64(0); q < uint64(cfg.MinVotes); q++ {
		r.Observe("bad", q, 1)
	}
	for i := 0; i < 5; i++ {
		r.ObserveJudgment("bad", true)
	}
	if !r.Quarantine("bad") {
		t.Fatalf("voter with 5 judgment rejections not quarantined (score %v)", r.Score("bad"))
	}
	if s := r.Stats(); s.JudgmentRejections != 5 {
		t.Fatalf("judgment rejections = %d, want 5", s.JudgmentRejections)
	}
	// Anonymous judgments are ignored.
	r.ObserveJudgment("", true)
	if s := r.Stats(); s.JudgmentRejections != 5 {
		t.Fatalf("anonymous judgment counted: %+v", s)
	}
}

func TestReputationRecovery(t *testing.T) {
	r := NewReputation(ReputationConfig{})
	for i := 0; i < 8; i++ {
		r.Observe("redeemed", 1, 2)
	}
	if !r.Quarantine("redeemed") {
		t.Fatal("setup: voter not quarantined")
	}
	// Clean votes on fresh queries plus accepted judgments climb back
	// above the threshold.
	for q := uint64(100); r.Quarantine("redeemed"); q++ {
		if q > 200 {
			t.Fatalf("no recovery after %d clean votes (score %v)", q-100, r.Score("redeemed"))
		}
		r.Observe("redeemed", q, 3)
		r.ObserveJudgment("redeemed", false)
	}
	if r.Quarantine("redeemed") {
		t.Fatal("voter still quarantined after recovery")
	}
}

func TestReputationWarmup(t *testing.T) {
	r := NewReputation(ReputationConfig{MinVotes: 10})
	// Heavy penalties before the warm-up completes never quarantine.
	for i := 0; i < 9; i++ {
		if v := r.Observe("early", 1, 2); v.Quarantined {
			t.Fatalf("quarantined during warm-up at vote %d", i+1)
		}
	}
	if v := r.Observe("early", 1, 2); !v.Quarantined {
		t.Fatalf("not quarantined once warm-up completed: %+v", v)
	}
}

func TestReputationQueryTableBounded(t *testing.T) {
	r := NewReputation(ReputationConfig{MaxQueries: 8})
	for q := uint64(0); q < 100; q++ {
		r.Observe("v", q, 1)
	}
	if n := len(r.queries); n != 8 {
		t.Fatalf("query table size = %d, want 8", n)
	}
	// The evicted query's history is gone: re-voting it reads as a first
	// vote, not a duplicate.
	if v := r.Observe("v", 0, 1); len(v.Reasons) != 0 {
		t.Fatalf("evicted query still penalized: %+v", v)
	}
}

func int32ID(i int) graph.NodeID { return graph.NodeID(i) }
