package vote

import (
	"math/rand"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
)

// randomGraphVote builds a random small graph plus a random negative vote
// over it. The query is always node 0; ranked answers are a shuffled
// subset of the remaining nodes with the voted best at a random rank ≥ 2.
func randomGraphVote(rng *rand.Rand) (*graph.Graph, Vote) {
	n := 4 + rng.Intn(7)
	g := graph.New(n)
	g.AddNodes(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() > 0.35 {
				continue
			}
			g.MustSetEdge(graph.NodeID(i), graph.NodeID(j), 0.1+0.9*rng.Float64())
		}
	}
	candidates := rng.Perm(n - 1)
	k := 2 + rng.Intn(min(4, n-2)+1)
	if k > len(candidates) {
		k = len(candidates)
	}
	ranked := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		ranked[i] = graph.NodeID(candidates[i] + 1)
	}
	rank := 2 + rng.Intn(k-1)
	return g, Vote{Kind: Negative, Query: 0, Ranked: ranked, Best: ranked[rank-1]}
}

// extremeScores applies the extreme weighting of Section V to a clone of
// g and evaluates both answers' scores with the production scoring path
// (pathidx.SumPaths over the clone's weights) — an oracle independent of
// Judge's inline weight function.
func extremeScores(t *testing.T, g *graph.Graph, v Vote, extremeConst float64, opt pathidx.Options) (best, rival float64) {
	t.Helper()
	rivalAns := v.Ranked[v.BestRank()-2]
	paths, err := pathidx.Enumerate(g, v.Query, []graph.NodeID{v.Best, rivalAns}, opt)
	if err != nil {
		t.Fatal(err)
	}
	bestSet := pathidx.EdgeSet(paths[v.Best])
	rivalSet := pathidx.EdgeSet(paths[rivalAns])
	ext := g.Clone()
	apply := func(set map[graph.EdgeKey]struct{}) {
		for e := range set {
			_, inBest := bestSet[e]
			_, inRival := rivalSet[e]
			w := 0.0
			switch {
			case inBest && inRival:
				w = extremeConst
			case inBest:
				w = 1
			}
			if err := ext.SetWeight(e.From, e.To, w); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(bestSet)
	apply(rivalSet)
	c := opt.C
	if c == 0 {
		c = 0.15
	}
	return pathidx.SumPaths(ext, paths[v.Best], c), pathidx.SumPaths(ext, paths[rivalAns], c)
}

// TestJudgePropertyExtremeCondition is the judgment algorithm's defining
// invariant: Judge declares a negative vote optimizable exactly when its
// best answer strictly outscores its rival under the extreme weighting
// (shared edges → extremeConst, best-only → 1, rival-only → 0).
func TestJudgePropertyExtremeCondition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opt := pathidx.Options{L: 3}
	optimizable, unoptimizable := 0, 0
	for trial := 0; trial < 300; trial++ {
		g, v := randomGraphVote(rng)
		got, err := Judge(g, v, DefaultExtremeConst, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sBest, sRival := extremeScores(t, g, v, DefaultExtremeConst, opt)
		if want := sBest > sRival; got != want {
			t.Fatalf("trial %d: Judge=%v but extreme scores best=%v rival=%v (vote %+v)",
				trial, got, sBest, sRival, v)
		}
		if got {
			optimizable++
		} else {
			unoptimizable++
		}
	}
	// The generator must exercise both verdicts or the property is vacuous.
	if optimizable == 0 || unoptimizable == 0 {
		t.Fatalf("degenerate trial mix: %d optimizable, %d unoptimizable", optimizable, unoptimizable)
	}
}

// TestJudgePropertyRelabelInvariance is the metamorphic check: applying a
// random node-ID permutation to the graph and the vote never changes the
// verdict.
func TestJudgePropertyRelabelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	opt := pathidx.Options{L: 3}
	for trial := 0; trial < 200; trial++ {
		g, v := randomGraphVote(rng)
		got, err := Judge(g, v, DefaultExtremeConst, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		perm := rng.Perm(g.NumNodes())
		relabel := func(id graph.NodeID) graph.NodeID { return graph.NodeID(perm[id]) }
		g2 := graph.New(g.NumNodes())
		g2.AddNodes(g.NumNodes())
		g.Edges(func(from, to graph.NodeID, w float64) {
			g2.MustSetEdge(relabel(from), relabel(to), w)
		})
		v2 := Vote{Kind: v.Kind, Query: relabel(v.Query), Best: relabel(v.Best)}
		for _, a := range v.Ranked {
			v2.Ranked = append(v2.Ranked, relabel(a))
		}

		got2, err := Judge(g2, v2, DefaultExtremeConst, opt)
		if err != nil {
			t.Fatalf("trial %d: relabeled: %v", trial, err)
		}
		if got != got2 {
			t.Fatalf("trial %d: verdict changed under relabeling: %v -> %v (perm %v, vote %+v)",
				trial, got, got2, perm, v)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
