package vote

import (
	"sort"
	"sync"

	"kgvote/internal/graph"
)

// Penalty reasons, used as telemetry label values and Verdict annotations.
const (
	ReasonJudgmentRejected   = "judgment_rejected"
	ReasonSelfContradiction  = "self_contradiction"
	ReasonCrossContradiction = "cross_contradiction"
	ReasonDuplicate          = "duplicate_vote"
)

// ReputationConfig tunes the voter-reputation tracker. Zero values take
// the documented defaults, so ReputationConfig{} is a working config.
type ReputationConfig struct {
	// Threshold is the score below which a voter is quarantined.
	Threshold float64 // default 0.4
	// MinVotes is the warm-up: a voter is never quarantined before it has
	// cast this many votes, however badly they score.
	MinVotes int // default 4
	// RejectPenalty is subtracted when the judgment algorithm rejects one
	// of the voter's votes at flush time (Section V: the vote can never be
	// satisfied by re-weighting).
	RejectPenalty float64 // default 0.15
	// SelfContradictPenalty is subtracted when a voter names a different
	// best answer than it previously named on the same query.
	SelfContradictPenalty float64 // default 0.3
	// DuplicatePenalty is subtracted when a voter re-casts the same best
	// answer on a query it already voted on (ballot stuffing).
	DuplicatePenalty float64 // default 0.2
	// ContradictPenalty is subtracted when a voter's first vote on a query
	// opposes the reputation-weighted plurality of the other voters.
	ContradictPenalty float64 // default 0.15
	// AgreeReward is added when a first vote agrees with that plurality.
	AgreeReward float64 // default 0.02
	// AcceptReward is added when the judgment algorithm keeps one of the
	// voter's votes at flush time.
	AcceptReward float64 // default 0.04
	// RecoverCredit is added for every clean observation (no penalty
	// fired) while the voter is quarantined, so consistent behaviour
	// eventually lifts the quarantine.
	RecoverCredit float64 // default 0.04
	// MaxQueries bounds the per-query contradiction table; the oldest
	// query records are evicted FIFO beyond it.
	MaxQueries int // default 4096
}

func (c ReputationConfig) withDefaults() ReputationConfig {
	if c.Threshold == 0 {
		c.Threshold = 0.4
	}
	if c.MinVotes == 0 {
		c.MinVotes = 4
	}
	if c.RejectPenalty == 0 {
		c.RejectPenalty = 0.15
	}
	if c.SelfContradictPenalty == 0 {
		c.SelfContradictPenalty = 0.3
	}
	if c.DuplicatePenalty == 0 {
		c.DuplicatePenalty = 0.2
	}
	if c.ContradictPenalty == 0 {
		c.ContradictPenalty = 0.15
	}
	if c.AgreeReward == 0 {
		c.AgreeReward = 0.02
	}
	if c.AcceptReward == 0 {
		c.AcceptReward = 0.04
	}
	if c.RecoverCredit == 0 {
		c.RecoverCredit = 0.04
	}
	if c.MaxQueries == 0 {
		c.MaxQueries = 4096
	}
	return c
}

// Verdict is the outcome of observing one vote.
type Verdict struct {
	// Quarantined reports that the voter is quarantined after this vote:
	// the vote is still accepted and logged, but the flush path will
	// exclude it while the voter's score stays below the threshold.
	Quarantined bool
	// Score is the voter's score after the observation, in [0, 1].
	Score float64
	// Reasons lists the penalties this observation fired, if any.
	Reasons []string
}

// ReputationStats is a snapshot of the tracker's counters, surfaced via
// /v1/stats and the telemetry registry.
type ReputationStats struct {
	// Voters is the number of distinct non-anonymous voters observed.
	Voters int `json:"voters"`
	// QuarantinedVoters is how many of them are currently quarantined.
	QuarantinedVoters int `json:"quarantined_voters"`
	// VotesQuarantined counts votes observed while their voter was
	// quarantined (the flush path reports its own exclusion count via
	// kgvote_votes_quarantined_total).
	VotesQuarantined int64 `json:"votes_quarantined"`
	// Per-reason penalty counters.
	JudgmentRejections  int64 `json:"judgment_rejections"`
	SelfContradictions  int64 `json:"self_contradictions"`
	CrossContradictions int64 `json:"cross_contradictions"`
	DuplicateVotes      int64 `json:"duplicate_votes"`
}

type voterState struct {
	score float64
	votes int
}

type queryState struct {
	byVoter map[string]graph.NodeID // each voter's latest best answer
}

// Reputation tracks per-voter credibility from the signals the system can
// observe without ground truth: judgment rejections (Section V), a voter
// contradicting itself on a query, ballot stuffing (re-casting the same
// vote), and opposing the reputation-weighted plurality of other voters
// on the same query. Scores start at 1, move additively, and are clamped
// to [0, 1]; a voter whose score falls below the threshold (after a
// warm-up) is quarantined — its votes are accepted and logged but
// excluded from flushes — and recovers by behaving consistently.
//
// Reputation is safe for concurrent use and implements core.VoterPolicy.
type Reputation struct {
	mu      sync.Mutex
	cfg     ReputationConfig
	voters  map[string]*voterState
	queries map[uint64]*queryState
	order   []uint64 // FIFO eviction order for queries

	votesQuarantined    int64
	judgmentRejections  int64
	selfContradictions  int64
	crossContradictions int64
	duplicateVotes      int64
}

// NewReputation returns a tracker with cfg's zero fields defaulted.
func NewReputation(cfg ReputationConfig) *Reputation {
	return &Reputation{
		cfg:     cfg.withDefaults(),
		voters:  make(map[string]*voterState),
		queries: make(map[uint64]*queryState),
	}
}

// Observe scores one accepted vote. queryKey must be a stable identity
// for the underlying question (NOT the query node id — every ask mints a
// fresh node): callers hash the question's entity signature or use the
// synthetic question id. Anonymous votes (empty voter) are not tracked.
func (r *Reputation) Observe(voter string, queryKey uint64, best graph.NodeID) Verdict {
	if voter == "" {
		return Verdict{Score: 1}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.voter(voter)
	vs.votes++

	qs := r.queries[queryKey]
	if qs == nil {
		qs = &queryState{byVoter: make(map[string]graph.NodeID)}
		r.queries[queryKey] = qs
		r.order = append(r.order, queryKey)
		if len(r.order) > r.cfg.MaxQueries {
			delete(r.queries, r.order[0])
			r.order = r.order[1:]
		}
	}

	var reasons []string
	if prev, seen := qs.byVoter[voter]; seen {
		if prev == best {
			vs.score -= r.cfg.DuplicatePenalty
			r.duplicateVotes++
			reasons = append(reasons, ReasonDuplicate)
		} else {
			vs.score -= r.cfg.SelfContradictPenalty
			r.selfContradictions++
			reasons = append(reasons, ReasonSelfContradiction)
		}
	} else if plurality, weight, ok := r.plurality(qs, voter); ok && weight >= 1 {
		// First vote on a query other voters already weighed in on:
		// compare against their reputation-weighted plurality answer.
		if plurality != best {
			vs.score -= r.cfg.ContradictPenalty
			r.crossContradictions++
			reasons = append(reasons, ReasonCrossContradiction)
		} else {
			vs.score += r.cfg.AgreeReward
		}
	}
	qs.byVoter[voter] = best

	if len(reasons) == 0 && r.isQuarantined(vs) {
		vs.score += r.cfg.RecoverCredit
	}
	vs.clamp()
	q := r.isQuarantined(vs)
	if q {
		r.votesQuarantined++
	}
	return Verdict{Quarantined: q, Score: vs.score, Reasons: reasons}
}

// plurality returns the reputation-weighted plurality best answer among
// the other voters on the query, its weight, and whether any exist. Ties
// break toward the smaller node id so the outcome is deterministic.
func (r *Reputation) plurality(qs *queryState, exclude string) (graph.NodeID, float64, bool) {
	if len(qs.byVoter) == 0 {
		return graph.None, 0, false
	}
	weights := make(map[graph.NodeID]float64)
	for u, ans := range qs.byVoter {
		if u == exclude {
			continue
		}
		if uvs := r.voters[u]; uvs != nil {
			weights[ans] += uvs.score
		}
	}
	if len(weights) == 0 {
		return graph.None, 0, false
	}
	answers := make([]graph.NodeID, 0, len(weights))
	for ans := range weights {
		answers = append(answers, ans)
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i] < answers[j] })
	best, bestW := graph.None, 0.0
	for _, ans := range answers {
		if weights[ans] > bestW {
			best, bestW = ans, weights[ans]
		}
	}
	return best, bestW, true
}

// ObserveJudgment feeds a flush-time judgment outcome back into the
// voter's score: rejected votes (Section V: never satisfiable) are
// penalized, kept votes earn a small reward. Implements core.VoterPolicy.
func (r *Reputation) ObserveJudgment(voter string, rejected bool) {
	if voter == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.voter(voter)
	if rejected {
		vs.score -= r.cfg.RejectPenalty
		r.judgmentRejections++
	} else {
		vs.score += r.cfg.AcceptReward
	}
	vs.clamp()
}

// Quarantine reports whether the voter is currently quarantined.
// Implements core.VoterPolicy: the flush path excludes such voters'
// pending votes from the solve.
func (r *Reputation) Quarantine(voter string) bool {
	if voter == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	vs := r.voters[voter]
	return vs != nil && r.isQuarantined(vs)
}

// Score returns the voter's current score (1 for unknown voters).
func (r *Reputation) Score(voter string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if vs := r.voters[voter]; vs != nil {
		return vs.score
	}
	return 1
}

// Stats snapshots the tracker's counters.
func (r *Reputation) Stats() ReputationStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := ReputationStats{
		Voters:              len(r.voters),
		VotesQuarantined:    r.votesQuarantined,
		JudgmentRejections:  r.judgmentRejections,
		SelfContradictions:  r.selfContradictions,
		CrossContradictions: r.crossContradictions,
		DuplicateVotes:      r.duplicateVotes,
	}
	for _, vs := range r.voters {
		if r.isQuarantined(vs) {
			s.QuarantinedVoters++
		}
	}
	return s
}

func (r *Reputation) voter(name string) *voterState {
	vs := r.voters[name]
	if vs == nil {
		vs = &voterState{score: 1}
		r.voters[name] = vs
	}
	return vs
}

func (r *Reputation) isQuarantined(vs *voterState) bool {
	return vs.votes >= r.cfg.MinVotes && vs.score < r.cfg.Threshold
}

func (vs *voterState) clamp() {
	if vs.score < 0 {
		vs.score = 0
	}
	if vs.score > 1 {
		vs.score = 1
	}
}
