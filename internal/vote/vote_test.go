package vote

import (
	"math"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
)

func TestFromRanking(t *testing.T) {
	ranked := []graph.NodeID{10, 11, 12}
	v, err := FromRanking(1, ranked, 11)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != Negative || v.BestRank() != 2 {
		t.Errorf("kind=%v rank=%d, want negative rank 2", v.Kind, v.BestRank())
	}
	v, err = FromRanking(1, ranked, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != Positive || v.BestRank() != 1 {
		t.Errorf("kind=%v rank=%d, want positive rank 1", v.Kind, v.BestRank())
	}
	if _, err := FromRanking(1, ranked, 99); err == nil {
		t.Errorf("best outside list should fail")
	}
}

func TestKindString(t *testing.T) {
	if Negative.String() != "negative" || Positive.String() != "positive" {
		t.Errorf("kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Errorf("unknown kind string wrong")
	}
}

func TestValidate(t *testing.T) {
	good := Vote{Kind: Negative, Query: 0, Ranked: []graph.NodeID{1, 2}, Best: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid vote rejected: %v", err)
	}
	cases := []Vote{
		{Kind: Negative, Ranked: nil, Best: 1},                                  // empty list
		{Kind: Negative, Ranked: []graph.NodeID{1, 2}, Best: 9},                 // best missing
		{Kind: Positive, Ranked: []graph.NodeID{1, 2}, Best: 2},                 // positive but rank 2
		{Kind: Negative, Ranked: []graph.NodeID{1, 2}, Best: 1},                 // negative but rank 1
		{Kind: Negative, Ranked: []graph.NodeID{1, 2, 2}, Best: 2},              // duplicate
		{Kind: Positive, Ranked: []graph.NodeID{1, 1}, Best: 1},                 // duplicate
		{Kind: Negative, Ranked: []graph.NodeID{3, 1, 1}, Best: 1, Query: 0},    // duplicate
		{Kind: Positive, Ranked: []graph.NodeID{5}, Best: 6},                    // best missing
		{Kind: Negative, Ranked: []graph.NodeID{}, Best: 0},                     // empty
		{Kind: Negative, Query: 1, Ranked: []graph.NodeID{7, 8, 9, 7}, Best: 8}, // duplicate
	}
	for i, v := range cases {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d: invalid vote accepted: %+v", i, v)
		}
	}
}

// diamond builds: q→a (0.5), q→b (0.5), a→x (1), b→y (1); answers x, y.
func diamond(t *testing.T) (*graph.Graph, graph.NodeID, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New(0)
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	y := g.AddNode("y")
	g.MustSetEdge(q, a, 0.5)
	g.MustSetEdge(q, b, 0.5)
	g.MustSetEdge(a, x, 1)
	g.MustSetEdge(b, y, 1)
	return g, q, x, y
}

func TestEdgeSet(t *testing.T) {
	g, q, x, y := diamond(t)
	v := Vote{Kind: Negative, Query: q, Ranked: []graph.NodeID{x, y}, Best: y}
	set, err := EdgeSet(g, v, pathidx.Options{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("edge set size = %d, want 4", len(set))
	}
	for _, k := range []graph.EdgeKey{
		{From: q, To: 1}, {From: q, To: 2}, {From: 1, To: x}, {From: 2, To: y},
	} {
		if _, ok := set[k]; !ok {
			t.Errorf("missing edge %v", k)
		}
	}
	bad := Vote{Kind: Negative, Ranked: nil}
	if _, err := EdgeSet(g, bad, pathidx.Options{}); err == nil {
		t.Errorf("invalid vote should fail")
	}
}

func TestSimilarity(t *testing.T) {
	e := func(f, to graph.NodeID) graph.EdgeKey { return graph.EdgeKey{From: f, To: to} }
	a := map[graph.EdgeKey]struct{}{e(0, 1): {}, e(1, 2): {}}
	b := map[graph.EdgeKey]struct{}{e(0, 1): {}, e(2, 3): {}}
	if got := Similarity(a, b); math.Abs(got-1.0/3) > 1e-15 {
		t.Errorf("Similarity = %v, want 1/3", got)
	}
	if got := Similarity(a, a); got != 1 {
		t.Errorf("self similarity = %v, want 1", got)
	}
	disjoint := map[graph.EdgeKey]struct{}{e(7, 8): {}}
	if got := Similarity(a, disjoint); got != 0 {
		t.Errorf("disjoint similarity = %v, want 0", got)
	}
	if got := Similarity(nil, nil); got != 0 {
		t.Errorf("empty similarity = %v, want 0", got)
	}
	// Symmetry.
	if Similarity(a, b) != Similarity(b, a) {
		t.Errorf("similarity not symmetric")
	}
}

func TestJudgePositiveAlwaysTrue(t *testing.T) {
	g, q, x, y := diamond(t)
	v := Vote{Kind: Positive, Query: q, Ranked: []graph.NodeID{x, y}, Best: x}
	ok, err := Judge(g, v, DefaultExtremeConst, pathidx.Options{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("positive vote judged unoptimizable")
	}
}

func TestJudgeOptimizableDisjointPaths(t *testing.T) {
	// x and y are reached over disjoint paths: boosting y's path to 1 and
	// x's to 0 makes y win, so the vote is optimizable.
	g, q, x, y := diamond(t)
	v := Vote{Kind: Negative, Query: q, Ranked: []graph.NodeID{x, y}, Best: y}
	ok, err := Judge(g, v, DefaultExtremeConst, pathidx.Options{L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("disjoint-path vote judged unoptimizable")
	}
}

func TestJudgeUnoptimizableDownstream(t *testing.T) {
	// q→a→b: b is strictly downstream of a, so b can never out-score a
	// (every walk to b extends a walk to a and loses a (1−c) factor).
	g := graph.New(0)
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.MustSetEdge(q, a, 0.9)
	g.MustSetEdge(a, b, 0.9)
	v := Vote{Kind: Negative, Query: q, Ranked: []graph.NodeID{a, b}, Best: b}
	ok, err := Judge(g, v, DefaultExtremeConst, pathidx.Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("strictly-downstream vote judged optimizable")
	}
}

func TestJudgeUnreachableBest(t *testing.T) {
	g := graph.New(0)
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b") // no incoming edges: unreachable
	g.MustSetEdge(q, a, 1)
	v := Vote{Kind: Negative, Query: q, Ranked: []graph.NodeID{a, b}, Best: b}
	ok, err := Judge(g, v, DefaultExtremeConst, pathidx.Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("unreachable best judged optimizable")
	}
}

func TestJudgeValidation(t *testing.T) {
	g, q, x, y := diamond(t)
	v := Vote{Kind: Negative, Query: q, Ranked: []graph.NodeID{x, y}, Best: y}
	if _, err := Judge(g, v, 0, pathidx.Options{}); err == nil {
		t.Errorf("extremeConst = 0 should fail")
	}
	if _, err := Judge(g, v, 1, pathidx.Options{}); err == nil {
		t.Errorf("extremeConst = 1 should fail")
	}
	bad := Vote{Kind: Negative, Ranked: nil}
	if _, err := Judge(g, bad, 0.5, pathidx.Options{}); err == nil {
		t.Errorf("invalid vote should fail")
	}
}

// Judge must compare against the answer ranked immediately above the best
// one, not the global top answer.
func TestJudgeUsesImmediateRival(t *testing.T) {
	// Answers: top (rank1), mid (rank2), best (rank3). best shares all its
	// edges with top (so it could never beat top), but is disjoint from
	// mid. Judging vs mid ⇒ optimizable.
	g := graph.New(0)
	q := g.AddNode("q")
	h := g.AddNode("hub")
	top := g.AddNode("top")
	mid := g.AddNode("mid")
	g.MustSetEdge(q, h, 0.9)
	g.MustSetEdge(h, top, 0.8)
	best := g.AddNode("best")
	g.MustSetEdge(top, best, 0.5) // best downstream of top
	g.MustSetEdge(q, mid, 0.05)   // mid on its own path
	v := Vote{Kind: Negative, Query: q, Ranked: []graph.NodeID{top, mid, best}, Best: best}
	ok, err := Judge(g, v, DefaultExtremeConst, pathidx.Options{L: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("vote should be optimizable against its immediate rival")
	}
}
