package vote

import (
	"fmt"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
)

// DefaultExtremeConst is the weight assigned to shared edges in the
// judgment algorithm's extreme condition. The paper only requires a
// constant strictly between 0 and 1.
const DefaultExtremeConst = 0.5

// Judge implements the judgment algorithm of Section V: it decides whether
// a negative vote can possibly be satisfied by re-weighting the graph.
//
// Let rank be the position of the voted best answer a* and let the rival
// be the answer ranked immediately above it. Under the extreme condition
//
//   - edges in Set(a*) ∩ Set(rival) get weight extremeConst ∈ (0, 1),
//   - edges in Set(a*) − Set(rival) get weight 1,
//   - edges in Set(rival) − Set(a*) get weight 0,
//
// S(q, a*) is maximized while S(q, rival) is minimized. If even then
// S(q, a*) ≤ S(q, rival), no re-weighting can promote a*, and the vote is
// discarded (the user's choice is deemed erroneous).
//
// Positive votes are trivially optimizable and return true.
func Judge(g *graph.Graph, v Vote, extremeConst float64, opt pathidx.Options) (bool, error) {
	if err := v.Validate(); err != nil {
		return false, err
	}
	if v.Kind == Positive {
		return true, nil
	}
	rank := v.BestRank()
	rival := v.Ranked[rank-2] // the answer one position above the best
	paths, err := pathidx.Enumerate(g, v.Query, []graph.NodeID{v.Best, rival}, opt)
	if err != nil {
		return false, err
	}
	return JudgeWithPaths(v, extremeConst, opt, paths)
}

// JudgeWithPaths is Judge over pre-enumerated walks: paths must hold, for
// the vote's best answer and its rival (the answer ranked immediately
// above it), every walk of length ≤ opt.L from the vote's query — exactly
// what Enumerate returns for any target set containing both. The flush
// pipeline calls it with a shared per-flush enumeration cache so judging
// never re-runs the DFS.
func JudgeWithPaths(v Vote, extremeConst float64, opt pathidx.Options, paths map[graph.NodeID][]pathidx.Path) (bool, error) {
	if err := v.Validate(); err != nil {
		return false, err
	}
	if v.Kind == Positive {
		return true, nil
	}
	if extremeConst <= 0 || extremeConst >= 1 {
		return false, fmt.Errorf("vote: extreme constant %v outside (0,1)", extremeConst)
	}
	rank := v.BestRank()
	rival := v.Ranked[rank-2] // the answer one position above the best
	bestPaths, rivalPaths := paths[v.Best], paths[rival]
	if len(bestPaths) == 0 {
		// No walk reaches the voted answer at all: unoptimizable.
		return false, nil
	}
	bestSet := pathidx.EdgeSet(bestPaths)
	rivalSet := pathidx.EdgeSet(rivalPaths)

	weight := func(e graph.EdgeKey) float64 {
		_, inBest := bestSet[e]
		_, inRival := rivalSet[e]
		switch {
		case inBest && inRival:
			return extremeConst
		case inBest:
			return 1
		default: // inRival only; walks never use edges outside their set
			return 0
		}
	}
	opt = fillDefaults(opt)
	c := opt.C
	sum := func(ps []pathidx.Path) float64 {
		var s float64
		for _, p := range ps {
			damp := c
			prob := 1.0
			for i := 0; i < p.Len(); i++ {
				prob *= weight(p.Edge(i))
				damp *= 1 - c
			}
			s += prob * damp
		}
		return s
	}
	return sum(bestPaths) > sum(rivalPaths), nil
}

// fillDefaults mirrors pathidx's internal defaulting for the restart
// probability, which Judge needs for its own path sums.
func fillDefaults(opt pathidx.Options) pathidx.Options {
	if opt.C == 0 {
		opt.C = 0.15
	}
	if opt.L == 0 {
		opt.L = pathidx.DefaultL
	}
	return opt
}
