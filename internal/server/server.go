// Package server exposes a Q&A system over a small JSON HTTP API: ask a
// question, vote on the answers, and let the engine re-optimize the
// knowledge graph in batches — the paper's interactive loop as a service.
//
// The serving path is single-writer/many-reader. Reads (/ask, /explain,
// /stats) never take the server mutex: they rank against the engine's
// epoch-stamped immutable graph snapshot (core.GraphSnapshot), so any
// number of questions are answered concurrently and keep being answered
// from the previous epoch while an optimization batch is in flight.
// Writes (/vote, /flush) serialize behind one mutex; when a batch solve
// finishes, the engine publishes the next snapshot epoch atomically and
// subsequent reads pick it up.
//
// /ask no longer attaches a query node to the shared graph. It scores the
// question as a virtual source against the snapshot and returns a
// negative opaque query handle; the query node is materialized lazily —
// under the writer mutex — only if a /vote references the handle. Ask-only
// traffic therefore leaves the graph untouched.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/graph"
	"kgvote/internal/lru"
	"kgvote/internal/qa"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
)

// pendingQueryCap bounds the table of asked-but-not-yet-voted query
// handles; the oldest handles expire first.
const pendingQueryCap = 1 << 16

// pendingQuery is a served question awaiting a possible vote. node stays
// graph.None until a vote materializes the query node; both fields are
// guarded by the server's writer mutex after insertion.
type pendingQuery struct {
	q    qa.Question
	node graph.NodeID
}

// Options configures a Server beyond the system itself.
type Options struct {
	// BatchSize is the number of votes per optimization batch (1 =
	// optimize on every vote).
	BatchSize int
	// Solver selects the per-batch solving mode.
	Solver core.StreamSolver
	// Durable, when non-nil, is the durability layer: accepted votes are
	// logged to its WAL before entering the stream, flushes log their
	// applied weight sets, and checkpoints run through it. The manager
	// must already be Recovered or Bootstrapped for the same system.
	Durable *durable.Manager
	// Recovered carries crash-recovered stream state to restore (pending
	// votes and counters); nil for a fresh boot.
	Recovered *durable.Recovered
	// CheckpointEvery checkpoints after every N completed flushes
	// (0 = never automatically; POST /checkpoint and shutdown still work).
	CheckpointEvery int
	// PendingCap bounds the asked-but-not-voted handle table
	// (0 = the 2^16 default; used by tests to force evictions).
	PendingCap int
	// Telemetry, when non-nil, instruments every layer the server
	// touches — HTTP routes, the qa serving path, the engine's solves —
	// and is served at GET /metrics in the Prometheus text format.
	// Construct the durable.Manager with the same registry (see
	// durable.NewMetrics) for WAL and checkpoint series.
	Telemetry *telemetry.Registry
	// SlowThreshold logs any request slower than this, with its stage
	// trace (0 = disabled).
	SlowThreshold time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// Server wires a qa.System and a vote stream into an http.Handler.
type Server struct {
	// mu is the single-writer lock: it guards the mutable graph (query
	// attachment, batch solves), the vote stream, and the durability log.
	// Read handlers never acquire it.
	mu     sync.Mutex
	sys    *qa.System
	stream *core.Stream
	dur    *durable.Manager

	// checkpointEvery/flushesSinceCkpt drive automatic checkpoints; both
	// are touched under mu only.
	checkpointEvery  int
	flushesSinceCkpt int

	pending    *lru.Cache[graph.NodeID, *pendingQuery]
	nextHandle atomic.Int32 // decrements; first handle is -2 (None is -1)

	// Lock-free mirrors of the stream counters for /stats.
	votesAccepted atomic.Int64
	votesPending  atomic.Int64
	flushes       atomic.Int64

	// Observability (nil when Options.Telemetry is nil; every use is
	// nil-safe).
	tel     *telemetry.Registry
	metrics *serverMetrics
	slow    time.Duration
	pprof   bool
}

// New returns a server over the system whose votes flush every batchSize
// votes (1 = optimize on every vote).
func New(sys *qa.System, batchSize int, solver core.StreamSolver) (*Server, error) {
	return NewWithOptions(sys, Options{BatchSize: batchSize, Solver: solver})
}

// NewWithOptions returns a server over the system, optionally wired to a
// durability manager and primed with crash-recovered stream state.
func NewWithOptions(sys *qa.System, o Options) (*Server, error) {
	st, err := sys.Engine.NewStream(o.BatchSize, o.Solver)
	if err != nil {
		return nil, err
	}
	if o.Recovered != nil {
		if err := st.Restore(o.Recovered.Pending, o.Recovered.TotalVotes, o.Recovered.Flushes); err != nil {
			return nil, err
		}
	}
	cap := o.PendingCap
	if cap == 0 {
		cap = pendingQueryCap
	}
	s := &Server{
		sys:             sys,
		stream:          st,
		dur:             o.Durable,
		checkpointEvery: o.CheckpointEvery,
		pending:         lru.New[graph.NodeID, *pendingQuery](cap),
		slow:            o.SlowThreshold,
		pprof:           o.Pprof,
	}
	if o.Telemetry != nil {
		s.wireTelemetry(o.Telemetry)
	}
	s.nextHandle.Store(int32(graph.None))
	s.votesAccepted.Store(int64(st.TotalVotes))
	s.votesPending.Store(int64(st.Pending()))
	s.flushes.Store(int64(st.Flushes))
	return s, nil
}

// Handler returns the route mux. Every API route runs inside the
// telemetry middleware (request ID, trace, latency, in-flight); the
// scrape and profiling endpoints are mounted uninstrumented.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("POST /ask", s.instrument("/ask", s.handleAsk))
	mux.HandleFunc("POST /vote", s.instrument("/vote", s.handleVote))
	mux.HandleFunc("POST /flush", s.instrument("/flush", s.handleFlush))
	mux.HandleFunc("POST /checkpoint", s.instrument("/checkpoint", s.handleCheckpoint))
	mux.HandleFunc("POST /explain", s.instrument("/explain", s.handleExplain))
	if s.tel != nil {
		mux.Handle("GET /metrics", s.tel.Handler())
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsBody is the /stats response. Durability is present only when the
// daemon runs with a data directory.
type StatsBody struct {
	Entities       int            `json:"entities"`
	Edges          int            `json:"edges"`
	Documents      int            `json:"documents"`
	VotesAccepted  int            `json:"votes_accepted"`
	VotesPending   int            `json:"votes_pending"`
	Flushes        int            `json:"flushes"`
	Epoch          uint64         `json:"epoch"`
	PendingEvicted int64          `json:"pending_evicted"`
	Durability     *durable.Stats `json:"durability,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.sys.Engine.Serving()
	body := StatsBody{
		Entities:       s.sys.Aug.Entities,
		Edges:          snap.NumEdges(),
		Documents:      len(s.sys.Answers()),
		VotesAccepted:  int(s.votesAccepted.Load()),
		VotesPending:   int(s.votesPending.Load()),
		Flushes:        int(s.flushes.Load()),
		Epoch:          snap.Epoch(),
		PendingEvicted: s.pending.Evictions(),
	}
	if s.dur != nil {
		ds := s.dur.Stats()
		body.Durability = &ds
	}
	writeJSON(w, http.StatusOK, body)
}

// AskRequest is the /ask request body. Either Text (entity extraction) or
// Entities may be given.
type AskRequest struct {
	Text     string         `json:"text,omitempty"`
	Entities map[string]int `json:"entities,omitempty"`
}

// AskResult is one ranked answer.
type AskResult struct {
	Doc   int     `json:"doc"`
	Title string  `json:"title"`
	Score float64 `json:"score"`
}

// AskResponse is the /ask response body. Query is an opaque handle
// identifying the served question for the follow-up /vote or /explain
// call; Epoch identifies the graph snapshot the ranking was computed
// from. Trace is present only when the request asked for it
// (?trace=1).
type AskResponse struct {
	Query   graph.NodeID `json:"query"`
	Epoch   uint64       `json:"epoch"`
	Results []AskResult  `json:"results"`
	Trace   *TraceBody   `json:"trace,omitempty"`
}

// TraceBody is the inline per-stage timing report of one /ask?trace=1
// request.
type TraceBody struct {
	RequestID   string            `json:"request_id"`
	CacheHit    bool              `json:"cache_hit"`
	Stages      []telemetry.Stage `json:"stages"`
	TotalMicros float64           `json:"total_us"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req AskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ents := req.Entities
	if len(ents) == 0 && req.Text != "" {
		ents = qa.ExtractEntities(req.Text, s.sys.Vocabulary())
	}
	if len(ents) == 0 {
		writeErr(w, http.StatusBadRequest, "no entities: provide text with known entities or an entities map")
		return
	}
	tr := telemetry.FromContext(r.Context())
	q := qa.Question{ID: -1, Entities: ents}
	snap, ranked, cacheHit, err := s.sys.RankSnapshotTraced(q, tr)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "ask: %v", err)
		return
	}
	stopResolve := tr.Stage("resolve")
	handle := graph.NodeID(s.nextHandle.Add(-1))
	s.pending.Add(handle, &pendingQuery{q: q, node: graph.None})
	resp := AskResponse{Query: handle, Epoch: snap.Epoch()}
	for _, a := range ranked {
		doc := s.sys.DocOf(a.Node)
		resp.Results = append(resp.Results, AskResult{Doc: doc, Title: s.sys.TitleOf(doc), Score: a.Score})
	}
	stopResolve()
	if r.URL.Query().Get("trace") == "1" && tr != nil {
		resp.Trace = &TraceBody{
			RequestID:   tr.ID(),
			CacheHit:    cacheHit,
			Stages:      tr.Stages(),
			TotalMicros: float64(tr.Elapsed().Microseconds()),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryNode resolves a client query reference to a graph node,
// materializing the query node of a pending handle on first use. The
// caller must hold s.mu.
func (s *Server) queryNode(ref graph.NodeID) (graph.NodeID, error) {
	if ref >= 0 {
		if !s.sys.Aug.IsQuery(ref) {
			return graph.None, fmt.Errorf("node %d is not a query node", ref)
		}
		return ref, nil
	}
	pq, ok := s.pending.Get(ref)
	if !ok {
		return graph.None, fmt.Errorf("unknown or expired query handle %d", ref)
	}
	if pq.node == graph.None {
		qn, err := s.sys.AttachQuestion(pq.q)
		if err != nil {
			return graph.None, err
		}
		pq.node = qn
		// Log the attachment the moment it happens so every later vote
		// record references a node the WAL can reproduce. A log failure
		// poisons the manager (the in-memory graph now has a node the log
		// does not), so subsequent votes are rejected until restart.
		if s.dur != nil {
			if err := s.dur.LogAttach(durable.Attach{Node: qn, Question: pq.q}); err != nil {
				return graph.None, err
			}
		}
	}
	return pq.node, nil
}

// VoteRequest is the /vote request body: the query handle and ranked list
// from a prior /ask, plus the document the user found best.
type VoteRequest struct {
	Query   graph.NodeID `json:"query"`
	Ranked  []int        `json:"ranked"` // document IDs in served order
	BestDoc int          `json:"best_doc"`
	Weight  float64      `json:"weight,omitempty"`
}

// VoteResponse reports what happened to the vote.
type VoteResponse struct {
	Kind    string       `json:"kind"`
	Pending int          `json:"pending"`
	Flushed bool         `json:"flushed"`
	Report  *core.Report `json:"report,omitempty"`
}

func (s *Server) handleVote(w http.ResponseWriter, r *http.Request) {
	var req VoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ranked := make([]graph.NodeID, 0, len(req.Ranked))
	for _, doc := range req.Ranked {
		a, err := s.sys.AnswerOf(doc)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "unknown document %d", doc)
			return
		}
		ranked = append(ranked, a)
	}
	best, err := s.sys.AnswerOf(req.BestDoc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown best document %d", req.BestDoc)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	qn, err := s.queryNode(req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "vote: %v", err)
		return
	}
	v, err := vote.FromRanking(qn, ranked, best)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "vote: %v", err)
		return
	}
	v.Weight = req.Weight
	if err := v.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "vote: %v", err)
		return
	}
	// WAL-first: the vote is logged before it enters the stream, so a crash
	// after this point replays it.
	if s.dur != nil {
		if err := s.dur.LogVote(v); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "durability: %v", err)
			return
		}
	}
	rep, err := s.stream.Push(v)
	if err != nil {
		if s.dur != nil {
			// The vote is in the log but not in the stream: memory and disk
			// disagree. Poison the log so recovery — which replays the vote —
			// is the only path forward.
			s.dur.Fail()
			writeErr(w, http.StatusInternalServerError, "optimize failed after the vote was logged; durability halted, restart to recover: %v", err)
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, "optimize: %v", err)
		return
	}
	if s.dur != nil {
		if rep != nil {
			if err := s.dur.LogFlush(rep.Applied); err != nil {
				writeErr(w, http.StatusServiceUnavailable, "durability: %v", err)
				return
			}
		}
		if err := s.dur.Commit(); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "durability: %v", err)
			return
		}
	}
	s.votesAccepted.Add(1)
	s.votesPending.Store(int64(s.stream.Pending()))
	s.flushes.Store(int64(s.stream.Flushes))
	if rep != nil {
		if err := s.afterFlushLocked(); err != nil {
			writeErr(w, http.StatusInternalServerError, "vote applied but checkpoint failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, VoteResponse{
		Kind:    v.Kind.String(),
		Pending: s.stream.Pending(),
		Flushed: rep != nil,
		Report:  rep,
	})
}

// afterFlushLocked runs the periodic checkpoint policy after a completed
// flush. The caller must hold s.mu.
func (s *Server) afterFlushLocked() error {
	if s.dur == nil || s.checkpointEvery <= 0 {
		return nil
	}
	s.flushesSinceCkpt++
	if s.flushesSinceCkpt < s.checkpointEvery {
		return nil
	}
	s.flushesSinceCkpt = 0
	return s.dur.Checkpoint(s.sys, s.stream.TotalVotes, s.stream.Flushes)
}

// Checkpoint persists a full-state checkpoint now, independent of the
// periodic policy. It backs POST /checkpoint and graceful shutdown.
func (s *Server) Checkpoint() error {
	if s.dur == nil {
		return fmt.Errorf("no durability layer configured")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushesSinceCkpt = 0
	return s.dur.Checkpoint(s.sys, s.stream.TotalVotes, s.stream.Flushes)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.dur == nil {
		writeErr(w, http.StatusNotImplemented, "checkpoint: daemon is running without a data directory")
		return
	}
	if err := s.Checkpoint(); err != nil {
		writeErr(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	ds := s.dur.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"checkpoints":  ds.Checkpoints,
		"wal_seq":      ds.LastCheckpointSeq,
		"wal_segments": ds.Wal.Segments,
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.stream.Flush()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "flush: %v", err)
		return
	}
	if s.dur != nil && rep != nil {
		if err := s.dur.LogFlush(rep.Applied); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "durability: %v", err)
			return
		}
		if err := s.dur.Commit(); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "durability: %v", err)
			return
		}
	}
	s.votesPending.Store(int64(s.stream.Pending()))
	s.flushes.Store(int64(s.stream.Flushes))
	if rep != nil {
		if err := s.afterFlushLocked(); err != nil {
			writeErr(w, http.StatusInternalServerError, "flush applied but checkpoint failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, VoteResponse{Pending: s.stream.Pending(), Flushed: rep != nil, Report: rep})
}

// ExplainRequest is the /explain request body.
type ExplainRequest struct {
	Query graph.NodeID `json:"query"`
	Doc   int          `json:"doc"`
	Top   int          `json:"top,omitempty"`
}

// ExplainResponse decomposes the similarity into walks rendered as node
// name sequences.
type ExplainResponse struct {
	Similarity float64       `json:"similarity"`
	TotalPaths int           `json:"total_paths"`
	Paths      []ExplainPath `json:"paths"`
}

// ExplainPath is one walk with its contribution.
type ExplainPath struct {
	Nodes    []string `json:"nodes"`
	Score    float64  `json:"score"`
	Fraction float64  `json:"fraction"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ans, err := s.sys.AnswerOf(req.Doc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown document %d", req.Doc)
		return
	}
	top := req.Top
	if top == 0 {
		top = 5
	}
	if req.Query < 0 {
		// A query handle from /ask: explain lock-free against the snapshot,
		// enumerating the virtual query's walks over the immutable CSR.
		pq, ok := s.pending.Get(req.Query)
		if !ok {
			writeErr(w, http.StatusBadRequest, "unknown or expired query handle %d", req.Query)
			return
		}
		ids, ws, _, err := s.sys.Seed(pq.q)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "explain: %v", err)
			return
		}
		snap := s.sys.Engine.Serving()
		ex, err := snap.ExplainSeeded(ids, ws, ans, top)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "explain: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, renderExplanation(ex, func(n graph.NodeID) string {
			if n == graph.None {
				return "q"
			}
			return snap.CSR().Name(n)
		}))
		return
	}
	// A materialized query node: walk the mutable graph under the writer
	// lock (legacy path, used for persisted/attached queries).
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sys.Aug.IsQuery(req.Query) {
		writeErr(w, http.StatusBadRequest, "node %d is not a query node", req.Query)
		return
	}
	ex, err := s.sys.Engine.Explain(req.Query, ans, top)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "explain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, renderExplanation(ex, s.sys.Aug.Name))
}

// renderExplanation converts an Explanation into the response shape,
// resolving node IDs through name.
func renderExplanation(ex *core.Explanation, name func(graph.NodeID) string) ExplainResponse {
	resp := ExplainResponse{Similarity: ex.Similarity, TotalPaths: ex.TotalPaths}
	for _, pc := range ex.Paths {
		names := make([]string, len(pc.Path.Nodes))
		for i, n := range pc.Path.Nodes {
			if nm := name(n); nm != "" {
				names[i] = nm
			} else {
				names[i] = fmt.Sprintf("#%d", n)
			}
		}
		resp.Paths = append(resp.Paths, ExplainPath{Nodes: names, Score: pc.Score, Fraction: pc.Fraction})
	}
	return resp
}
