// Package server exposes a Q&A system over a small JSON HTTP API: ask a
// question, vote on the answers, and let the engine re-optimize the
// knowledge graph in batches — the paper's interactive loop as a service.
//
// The serving path is single-writer/many-reader. Reads (/ask, /explain,
// /stats) never take the server mutex: they rank against the engine's
// epoch-stamped immutable graph snapshot (core.GraphSnapshot), so any
// number of questions are answered concurrently and keep being answered
// from the previous epoch while an optimization batch is in flight.
// Writes (/vote, /flush) serialize behind one mutex; when a batch solve
// finishes, the engine publishes the next snapshot epoch atomically and
// subsequent reads pick it up.
//
// /ask no longer attaches a query node to the shared graph. It scores the
// question as a virtual source against the snapshot and returns a
// negative opaque query handle; the query node is materialized lazily —
// under the writer mutex — only if a /vote references the handle. Ask-only
// traffic therefore leaves the graph untouched.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/lru"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

// pendingQueryCap bounds the table of asked-but-not-yet-voted query
// handles; the oldest handles expire first.
const pendingQueryCap = 1 << 16

// pendingQuery is a served question awaiting a possible vote. node stays
// graph.None until a vote materializes the query node; both fields are
// guarded by the server's writer mutex after insertion.
type pendingQuery struct {
	q    qa.Question
	node graph.NodeID
}

// Server wires a qa.System and a vote stream into an http.Handler.
type Server struct {
	// mu is the single-writer lock: it guards the mutable graph (query
	// attachment, batch solves) and the vote stream. Read handlers never
	// acquire it.
	mu     sync.Mutex
	sys    *qa.System
	stream *core.Stream

	pending    *lru.Cache[graph.NodeID, *pendingQuery]
	nextHandle atomic.Int32 // decrements; first handle is -2 (None is -1)

	// Lock-free mirrors of the stream counters for /stats.
	votesAccepted atomic.Int64
	votesPending  atomic.Int64
	flushes       atomic.Int64
}

// New returns a server over the system whose votes flush every batchSize
// votes (1 = optimize on every vote).
func New(sys *qa.System, batchSize int, solver core.StreamSolver) (*Server, error) {
	st, err := sys.Engine.NewStream(batchSize, solver)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sys:     sys,
		stream:  st,
		pending: lru.New[graph.NodeID, *pendingQuery](pendingQueryCap),
	}
	s.nextHandle.Store(int32(graph.None))
	return s, nil
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /ask", s.handleAsk)
	mux.HandleFunc("POST /vote", s.handleVote)
	mux.HandleFunc("POST /flush", s.handleFlush)
	mux.HandleFunc("POST /explain", s.handleExplain)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsBody is the /stats response.
type StatsBody struct {
	Entities      int    `json:"entities"`
	Edges         int    `json:"edges"`
	Documents     int    `json:"documents"`
	VotesAccepted int    `json:"votes_accepted"`
	VotesPending  int    `json:"votes_pending"`
	Flushes       int    `json:"flushes"`
	Epoch         uint64 `json:"epoch"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.sys.Engine.Serving()
	writeJSON(w, http.StatusOK, StatsBody{
		Entities:      s.sys.Aug.Entities,
		Edges:         snap.NumEdges(),
		Documents:     len(s.sys.Answers()),
		VotesAccepted: int(s.votesAccepted.Load()),
		VotesPending:  int(s.votesPending.Load()),
		Flushes:       int(s.flushes.Load()),
		Epoch:         snap.Epoch(),
	})
}

// AskRequest is the /ask request body. Either Text (entity extraction) or
// Entities may be given.
type AskRequest struct {
	Text     string         `json:"text,omitempty"`
	Entities map[string]int `json:"entities,omitempty"`
}

// AskResult is one ranked answer.
type AskResult struct {
	Doc   int     `json:"doc"`
	Title string  `json:"title"`
	Score float64 `json:"score"`
}

// AskResponse is the /ask response body. Query is an opaque handle
// identifying the served question for the follow-up /vote or /explain
// call; Epoch identifies the graph snapshot the ranking was computed
// from.
type AskResponse struct {
	Query   graph.NodeID `json:"query"`
	Epoch   uint64       `json:"epoch"`
	Results []AskResult  `json:"results"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req AskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ents := req.Entities
	if len(ents) == 0 && req.Text != "" {
		ents = qa.ExtractEntities(req.Text, s.sys.Vocabulary())
	}
	if len(ents) == 0 {
		writeErr(w, http.StatusBadRequest, "no entities: provide text with known entities or an entities map")
		return
	}
	q := qa.Question{ID: -1, Entities: ents}
	snap, ranked, err := s.sys.RankSnapshot(q)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "ask: %v", err)
		return
	}
	handle := graph.NodeID(s.nextHandle.Add(-1))
	s.pending.Add(handle, &pendingQuery{q: q, node: graph.None})
	resp := AskResponse{Query: handle, Epoch: snap.Epoch()}
	for _, a := range ranked {
		doc := s.sys.DocOf(a.Node)
		resp.Results = append(resp.Results, AskResult{Doc: doc, Title: s.sys.TitleOf(doc), Score: a.Score})
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryNode resolves a client query reference to a graph node,
// materializing the query node of a pending handle on first use. The
// caller must hold s.mu.
func (s *Server) queryNode(ref graph.NodeID) (graph.NodeID, error) {
	if ref >= 0 {
		if !s.sys.Aug.IsQuery(ref) {
			return graph.None, fmt.Errorf("node %d is not a query node", ref)
		}
		return ref, nil
	}
	pq, ok := s.pending.Get(ref)
	if !ok {
		return graph.None, fmt.Errorf("unknown or expired query handle %d", ref)
	}
	if pq.node == graph.None {
		qn, err := s.sys.AttachQuestion(pq.q)
		if err != nil {
			return graph.None, err
		}
		pq.node = qn
	}
	return pq.node, nil
}

// VoteRequest is the /vote request body: the query handle and ranked list
// from a prior /ask, plus the document the user found best.
type VoteRequest struct {
	Query   graph.NodeID `json:"query"`
	Ranked  []int        `json:"ranked"` // document IDs in served order
	BestDoc int          `json:"best_doc"`
	Weight  float64      `json:"weight,omitempty"`
}

// VoteResponse reports what happened to the vote.
type VoteResponse struct {
	Kind    string       `json:"kind"`
	Pending int          `json:"pending"`
	Flushed bool         `json:"flushed"`
	Report  *core.Report `json:"report,omitempty"`
}

func (s *Server) handleVote(w http.ResponseWriter, r *http.Request) {
	var req VoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ranked := make([]graph.NodeID, 0, len(req.Ranked))
	for _, doc := range req.Ranked {
		a, err := s.sys.AnswerOf(doc)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "unknown document %d", doc)
			return
		}
		ranked = append(ranked, a)
	}
	best, err := s.sys.AnswerOf(req.BestDoc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown best document %d", req.BestDoc)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	qn, err := s.queryNode(req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "vote: %v", err)
		return
	}
	v, err := vote.FromRanking(qn, ranked, best)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "vote: %v", err)
		return
	}
	v.Weight = req.Weight
	if err := v.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "vote: %v", err)
		return
	}
	rep, err := s.stream.Push(v)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "optimize: %v", err)
		return
	}
	s.votesAccepted.Add(1)
	s.votesPending.Store(int64(s.stream.Pending()))
	s.flushes.Store(int64(s.stream.Flushes))
	writeJSON(w, http.StatusOK, VoteResponse{
		Kind:    v.Kind.String(),
		Pending: s.stream.Pending(),
		Flushed: rep != nil,
		Report:  rep,
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.stream.Flush()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "flush: %v", err)
		return
	}
	s.votesPending.Store(int64(s.stream.Pending()))
	s.flushes.Store(int64(s.stream.Flushes))
	writeJSON(w, http.StatusOK, VoteResponse{Pending: s.stream.Pending(), Flushed: rep != nil, Report: rep})
}

// ExplainRequest is the /explain request body.
type ExplainRequest struct {
	Query graph.NodeID `json:"query"`
	Doc   int          `json:"doc"`
	Top   int          `json:"top,omitempty"`
}

// ExplainResponse decomposes the similarity into walks rendered as node
// name sequences.
type ExplainResponse struct {
	Similarity float64       `json:"similarity"`
	TotalPaths int           `json:"total_paths"`
	Paths      []ExplainPath `json:"paths"`
}

// ExplainPath is one walk with its contribution.
type ExplainPath struct {
	Nodes    []string `json:"nodes"`
	Score    float64  `json:"score"`
	Fraction float64  `json:"fraction"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ans, err := s.sys.AnswerOf(req.Doc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown document %d", req.Doc)
		return
	}
	top := req.Top
	if top == 0 {
		top = 5
	}
	if req.Query < 0 {
		// A query handle from /ask: explain lock-free against the snapshot,
		// enumerating the virtual query's walks over the immutable CSR.
		pq, ok := s.pending.Get(req.Query)
		if !ok {
			writeErr(w, http.StatusBadRequest, "unknown or expired query handle %d", req.Query)
			return
		}
		ids, ws, _, err := s.sys.Seed(pq.q)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "explain: %v", err)
			return
		}
		snap := s.sys.Engine.Serving()
		ex, err := snap.ExplainSeeded(ids, ws, ans, top)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "explain: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, renderExplanation(ex, func(n graph.NodeID) string {
			if n == graph.None {
				return "q"
			}
			return snap.CSR().Name(n)
		}))
		return
	}
	// A materialized query node: walk the mutable graph under the writer
	// lock (legacy path, used for persisted/attached queries).
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sys.Aug.IsQuery(req.Query) {
		writeErr(w, http.StatusBadRequest, "node %d is not a query node", req.Query)
		return
	}
	ex, err := s.sys.Engine.Explain(req.Query, ans, top)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "explain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, renderExplanation(ex, s.sys.Aug.Name))
}

// renderExplanation converts an Explanation into the response shape,
// resolving node IDs through name.
func renderExplanation(ex *core.Explanation, name func(graph.NodeID) string) ExplainResponse {
	resp := ExplainResponse{Similarity: ex.Similarity, TotalPaths: ex.TotalPaths}
	for _, pc := range ex.Paths {
		names := make([]string, len(pc.Path.Nodes))
		for i, n := range pc.Path.Nodes {
			if nm := name(n); nm != "" {
				names[i] = nm
			} else {
				names[i] = fmt.Sprintf("#%d", n)
			}
		}
		resp.Paths = append(resp.Paths, ExplainPath{Nodes: names, Score: pc.Score, Fraction: pc.Fraction})
	}
	return resp
}
