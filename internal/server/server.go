// Package server exposes a Q&A system over a small JSON HTTP API: ask a
// question, vote on the answers, and let the engine re-optimize the
// knowledge graph in batches — the paper's interactive loop as a service.
//
// The engine is single-writer, so the server serializes all graph access
// behind one mutex; rankings served between optimizations always reflect
// the latest flushed batch.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

// Server wires a qa.System and a vote stream into an http.Handler.
type Server struct {
	mu     sync.Mutex
	sys    *qa.System
	stream *core.Stream

	votesAccepted int
}

// New returns a server over the system whose votes flush every batchSize
// votes (1 = optimize on every vote).
func New(sys *qa.System, batchSize int, solver core.StreamSolver) (*Server, error) {
	st, err := sys.Engine.NewStream(batchSize, solver)
	if err != nil {
		return nil, err
	}
	return &Server{sys: sys, stream: st}, nil
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /ask", s.handleAsk)
	mux.HandleFunc("POST /vote", s.handleVote)
	mux.HandleFunc("POST /flush", s.handleFlush)
	mux.HandleFunc("POST /explain", s.handleExplain)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsBody is the /stats response.
type StatsBody struct {
	Entities      int `json:"entities"`
	Edges         int `json:"edges"`
	Documents     int `json:"documents"`
	VotesAccepted int `json:"votes_accepted"`
	VotesPending  int `json:"votes_pending"`
	Flushes       int `json:"flushes"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatsBody{
		Entities:      s.sys.Aug.Entities,
		Edges:         s.sys.Aug.NumEdges(),
		Documents:     len(s.sys.Answers()),
		VotesAccepted: s.votesAccepted,
		VotesPending:  s.stream.Pending(),
		Flushes:       s.stream.Flushes,
	})
}

// AskRequest is the /ask request body. Either Text (entity extraction) or
// Entities may be given.
type AskRequest struct {
	Text     string         `json:"text,omitempty"`
	Entities map[string]int `json:"entities,omitempty"`
}

// AskResult is one ranked answer.
type AskResult struct {
	Doc   int     `json:"doc"`
	Title string  `json:"title"`
	Score float64 `json:"score"`
}

// AskResponse is the /ask response body. Query identifies the attached
// query node for the follow-up /vote call.
type AskResponse struct {
	Query   graph.NodeID `json:"query"`
	Results []AskResult  `json:"results"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req AskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ents := req.Entities
	if len(ents) == 0 && req.Text != "" {
		ents = qa.ExtractEntities(req.Text, s.sys.Vocabulary())
	}
	if len(ents) == 0 {
		writeErr(w, http.StatusBadRequest, "no entities: provide text with known entities or an entities map")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	qn, ranked, err := s.sys.Ask(qa.Question{ID: -1, Entities: ents})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "ask: %v", err)
		return
	}
	resp := AskResponse{Query: qn}
	for _, a := range ranked {
		score, err := s.sys.Engine.Similarity(qn, a)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "score: %v", err)
			return
		}
		doc := s.sys.DocOf(a)
		resp.Results = append(resp.Results, AskResult{Doc: doc, Title: s.sys.TitleOf(doc), Score: score})
	}
	writeJSON(w, http.StatusOK, resp)
}

// VoteRequest is the /vote request body: the query node and ranked list
// from a prior /ask, plus the document the user found best.
type VoteRequest struct {
	Query   graph.NodeID `json:"query"`
	Ranked  []int        `json:"ranked"` // document IDs in served order
	BestDoc int          `json:"best_doc"`
	Weight  float64      `json:"weight,omitempty"`
}

// VoteResponse reports what happened to the vote.
type VoteResponse struct {
	Kind    string       `json:"kind"`
	Pending int          `json:"pending"`
	Flushed bool         `json:"flushed"`
	Report  *core.Report `json:"report,omitempty"`
}

func (s *Server) handleVote(w http.ResponseWriter, r *http.Request) {
	var req VoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ranked := make([]graph.NodeID, 0, len(req.Ranked))
	for _, doc := range req.Ranked {
		a, err := s.sys.AnswerOf(doc)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "unknown document %d", doc)
			return
		}
		ranked = append(ranked, a)
	}
	best, err := s.sys.AnswerOf(req.BestDoc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown best document %d", req.BestDoc)
		return
	}
	v, err := vote.FromRanking(req.Query, ranked, best)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "vote: %v", err)
		return
	}
	v.Weight = req.Weight
	if err := v.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "vote: %v", err)
		return
	}
	rep, err := s.stream.Push(v)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "optimize: %v", err)
		return
	}
	s.votesAccepted++
	writeJSON(w, http.StatusOK, VoteResponse{
		Kind:    v.Kind.String(),
		Pending: s.stream.Pending(),
		Flushed: rep != nil,
		Report:  rep,
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.stream.Flush()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "flush: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, VoteResponse{Pending: s.stream.Pending(), Flushed: rep != nil, Report: rep})
}

// ExplainRequest is the /explain request body.
type ExplainRequest struct {
	Query graph.NodeID `json:"query"`
	Doc   int          `json:"doc"`
	Top   int          `json:"top,omitempty"`
}

// ExplainResponse decomposes the similarity into walks rendered as node
// name sequences.
type ExplainResponse struct {
	Similarity float64       `json:"similarity"`
	TotalPaths int           `json:"total_paths"`
	Paths      []ExplainPath `json:"paths"`
}

// ExplainPath is one walk with its contribution.
type ExplainPath struct {
	Nodes    []string `json:"nodes"`
	Score    float64  `json:"score"`
	Fraction float64  `json:"fraction"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ans, err := s.sys.AnswerOf(req.Doc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown document %d", req.Doc)
		return
	}
	top := req.Top
	if top == 0 {
		top = 5
	}
	ex, err := s.sys.Engine.Explain(req.Query, ans, top)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "explain: %v", err)
		return
	}
	resp := ExplainResponse{Similarity: ex.Similarity, TotalPaths: ex.TotalPaths}
	for _, pc := range ex.Paths {
		names := make([]string, len(pc.Path.Nodes))
		for i, n := range pc.Path.Nodes {
			if name := s.sys.Aug.Name(n); name != "" {
				names[i] = name
			} else {
				names[i] = fmt.Sprintf("#%d", n)
			}
		}
		resp.Paths = append(resp.Paths, ExplainPath{Nodes: names, Score: pc.Score, Fraction: pc.Fraction})
	}
	writeJSON(w, http.StatusOK, resp)
}
