// Package server exposes a Q&A system over a versioned JSON HTTP API: ask
// a question, vote on the answers, and let the engine re-optimize the
// knowledge graph in batches — the paper's interactive loop as a service.
// Request and response bodies live in the public api package; every route
// is mounted under /v1 with the unprefixed legacy paths kept as deprecated
// aliases (Deprecation header, same bodies).
//
// The serving path is single-writer/many-reader. Reads (/v1/ask,
// /v1/explain, /v1/stats) never take the writer gate: they rank against
// the engine's epoch-stamped immutable graph snapshot
// (core.GraphSnapshot), so any number of questions are answered
// concurrently and keep being answered from the previous epoch while an
// optimization batch is in flight. Writes (/v1/vote, /v1/flush) serialize
// behind one writer gate — a one-slot channel rather than a mutex, so a
// write whose deadline expires while a solve holds the gate degrades into
// a 503/timeout instead of queueing forever.
//
// Overload protection (DESIGN.md §12): when Options.Admission sets a
// capacity, /v1/vote runs every request through the admission controller —
// bounded pending queue, flush watermark, per-client token buckets — and
// sheds excess load as 429 envelopes with Retry-After hints. The check is
// advisory (lock-free counters) plus an authoritative re-check under the
// gate, so the queue bound is exact. BeginDrain/Drain implement graceful
// shutdown: admission stops, reads continue, queued votes are solved, and
// a final checkpoint lands before exit.
//
// /v1/ask does not attach a query node to the shared graph. It scores the
// question as a virtual source against the snapshot and returns a negative
// opaque query handle; the query node is materialized lazily — under the
// writer gate — only if a /v1/vote references the handle. Ask-only traffic
// therefore leaves the graph untouched.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kgvote/api"
	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/graph"
	"kgvote/internal/lru"
	"kgvote/internal/qa"
	"kgvote/internal/shard"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
)

// The wire DTOs are defined once in the api package; these aliases keep
// the server's internal code (and its tests) on the short names.
type (
	StatsBody       = api.StatsBody
	AskRequest      = api.AskRequest
	AskResult       = api.AskResult
	AskResponse     = api.AskResponse
	TraceBody       = api.TraceBody
	VoteRequest     = api.VoteRequest
	VoteResponse    = api.VoteResponse
	ExplainRequest  = api.ExplainRequest
	ExplainResponse = api.ExplainResponse
	ExplainPath     = api.ExplainPath
)

// pendingQueryCap bounds the table of asked-but-not-yet-voted query
// handles; the oldest handles expire first.
const pendingQueryCap = 1 << 16

// pendingQuery is a served question awaiting a possible vote. node stays
// graph.None until a vote materializes the query node; both fields are
// guarded by the server's writer gate after insertion.
type pendingQuery struct {
	q    qa.Question
	node graph.NodeID
}

// Options configures a Server beyond the system itself.
type Options struct {
	// BatchSize is the number of votes per optimization batch (1 =
	// optimize on every vote).
	BatchSize int
	// Solver selects the per-batch solving mode.
	Solver core.StreamSolver
	// Durable, when non-nil, is the durability layer: accepted votes are
	// logged to its WAL before entering the stream, flushes log their
	// applied weight sets, and checkpoints run through it. The manager
	// must already be Recovered or Bootstrapped for the same system.
	Durable *durable.Manager
	// Recovered carries crash-recovered stream state to restore (pending
	// votes and counters); nil for a fresh boot.
	Recovered *durable.Recovered
	// CheckpointEvery checkpoints after every N completed flushes
	// (0 = never automatically; POST /v1/checkpoint and shutdown still
	// work).
	CheckpointEvery int
	// PendingCap bounds the asked-but-not-voted handle table
	// (0 = the 2^16 default; used by tests to force evictions).
	PendingCap int
	// Admission, when Capacity > 0, bounds the pending-vote queue and
	// sheds excess /v1/vote load (429 + Retry-After). Zero Capacity
	// disables admission control entirely.
	Admission admit.Config
	// Reputation, when non-nil, enables voter reputation tracking:
	// attributed votes (VoteRequest.Voter) are scored, low-reputation
	// voters are quarantined, and quarantined voters' votes are excluded
	// from batch solves until their reputation recovers. Nil disables
	// tracking entirely; anonymous votes are never tracked either way.
	Reputation *vote.ReputationConfig
	// AsyncFlush moves batch solves off the vote path onto a background
	// scheduler: /v1/vote enqueues and returns immediately, and
	// VoteResponse.Flushed stays false. Off by default — votes flush
	// inline when the batch fills, which is what the response's
	// Flushed/Report fields and the crash-recovery tests assume.
	AsyncFlush bool
	// FlushTimeout bounds each flush solve (background flushes always;
	// inline flushes only through the request's own deadline). When it
	// fires mid-solve the solver stops at its best-so-far iterate and the
	// report is marked Partial. 0 = no bound.
	FlushTimeout time.Duration
	// Telemetry, when non-nil, instruments every layer the server
	// touches — HTTP routes, the qa serving path, the engine's solves —
	// and is served at GET /metrics in the Prometheus text format.
	// Construct the durable.Manager with the same registry (see
	// durable.NewMetrics) for WAL and checkpoint series.
	Telemetry *telemetry.Registry
	// SlowThreshold logs any request slower than this, with its stage
	// trace (0 = disabled).
	SlowThreshold time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// ReadOnly serves a snapshot replica: every write route (/v1/vote,
	// /v1/flush, /v1/checkpoint, /v1/weights) answers 501/read_only while
	// the read routes keep serving; the snapshot follower feeds the
	// graph through ImportSnapshot.
	ReadOnly bool
	// Shard, when non-nil, runs this server as one shard of a
	// partitioned cluster (DESIGN.md §14): /v1/ask ranks only the
	// documents the shard owns, /v1/vote rejects documents owned
	// elsewhere with 421/misrouted, /v1/weights accepts peer replication
	// pushes, and each flush's applied weight set is handed to OnFlush
	// for replication.
	Shard *ShardConfig
	// Tenant names the tenant this server serves inside a multi-tenant
	// registry (DESIGN.md §17). It labels /v1/stats and, for every
	// tenant other than "default", maps admission sheds to the
	// tenant_quota_exceeded envelope (the default tenant keeps the
	// legacy per-reason codes so un-scoped clients see unchanged
	// responses). Empty on un-tenanted daemons.
	Tenant string
	// Tenants, when non-nil, is read at /v1/stats time to embed the
	// tenant registry's summary section; the multi-tenant daemon wires
	// it on the default tenant's server only.
	Tenants func() *api.TenantsStats
}

// DefaultTenant is the tenant every un-scoped /v1 request resolves to
// in a multi-tenant daemon. It always exists, cannot be created or
// deleted, and keeps the legacy shed codes for bit-compatibility with
// single-tenant deployments.
const DefaultTenant = "default"

// ShardConfig wires a server into a sharded cluster.
type ShardConfig struct {
	// Map is the cluster's document→shard assignment; every process must
	// load the same map file.
	Map *shard.Map
	// Index is this shard's position in the map.
	Index int
	// OnFlush, when non-nil, is invoked under the writer gate after each
	// completed flush with the flush sequence and the applied weight set
	// filtered to the replicated region (entity and answer edges only).
	// It must not block: the pusher enqueues and returns.
	OnFlush func(seq uint64, set []core.WeightChange)
}

// Server wires a qa.System and a vote stream into an http.Handler.
type Server struct {
	// mu is the single-writer gate: it guards the mutable graph (query
	// attachment, batch solves), the vote stream, and the durability log.
	// Read handlers never acquire it.
	mu     writerGate
	sys    *qa.System
	stream *core.Stream
	dur    *durable.Manager

	// Admission control (nil = unbounded legacy behavior) and the flags
	// its fast path reads without the gate.
	admit    *admit.Controller
	flushing atomic.Bool
	draining atomic.Bool

	// Voter reputation tracking (nil unless Options.Reputation). The
	// tracker is internally synchronized; the stream consults it as its
	// VoterPolicy at flush time under the writer gate.
	rep *vote.Reputation

	// Background flush scheduling (nil unless Options.AsyncFlush).
	flusher      *flusher
	asyncFlush   bool
	flushTimeout time.Duration

	// checkpointEvery/flushesSinceCkpt drive automatic checkpoints; both
	// are touched under mu only.
	checkpointEvery  int
	flushesSinceCkpt int

	pending    *lru.Cache[graph.NodeID, *pendingQuery]
	nextHandle atomic.Int32 // decrements; first handle is -2 (None is -1)

	// Lock-free mirrors of the stream counters for /stats and the
	// admission fast path.
	votesAccepted atomic.Int64
	votesPending  atomic.Int64
	flushes       atomic.Int64

	// Observability (nil when Options.Telemetry is nil; every use is
	// nil-safe).
	tel     *telemetry.Registry
	metrics *serverMetrics
	slow    time.Duration
	pprof   bool

	// Multi-tenant identity (DESIGN.md §17): tenant labels stats and
	// selects the quota shed code; tenantsFn embeds the registry summary
	// in the default tenant's /v1/stats.
	tenant    string
	tenantsFn func() *api.TenantsStats

	// Sharded serving (DESIGN.md §14). boundary is the first runtime
	// node ID: entity and answer nodes below it are corpus-stable across
	// processes and form the replicated region; query nodes above it are
	// process-local and never travel. remoteSeqs is the replication gap
	// detector — it gets its own small mutex (not the writer gate) so
	// /v1/stats can read it without queueing behind a solve; writers
	// mutate it under the gate as well, so gate-holders read it safely.
	// replicaStats is published by the snapshot follower on read replicas.
	readOnly      bool
	shardCfg      *ShardConfig
	boundary      graph.NodeID
	remoteMu      sync.Mutex
	remoteSeqs    map[uint32]uint64
	remoteApplied atomic.Int64
	replicaStats  atomic.Pointer[api.ReplicaStats]

	// flushTotals accumulates per-flush pipeline telemetry for /v1/stats
	// (the /metrics histograms in core.Metrics carry the same data as
	// distributions; stats wants plain cumulative numbers). Written under
	// the writer gate in flushLocked; its own small mutex lets handleStats
	// read without queueing behind a solve.
	flushTotals struct {
		sync.Mutex
		api.FlushStats
	}
}

// New returns a server over the system whose votes flush every batchSize
// votes (1 = optimize on every vote).
func New(sys *qa.System, batchSize int, solver core.StreamSolver) (*Server, error) {
	return NewWithOptions(sys, Options{BatchSize: batchSize, Solver: solver})
}

// NewWithOptions returns a server over the system, optionally wired to a
// durability manager and primed with crash-recovered stream state.
func NewWithOptions(sys *qa.System, o Options) (*Server, error) {
	st, err := sys.Engine.NewStream(o.BatchSize, o.Solver)
	if err != nil {
		return nil, err
	}
	if o.Recovered != nil {
		if err := st.Restore(o.Recovered.Pending, o.Recovered.TotalVotes, o.Recovered.Flushes); err != nil {
			return nil, err
		}
	}
	cap := o.PendingCap
	if cap == 0 {
		cap = pendingQueryCap
	}
	s := &Server{
		mu:              newWriterGate(),
		sys:             sys,
		stream:          st,
		dur:             o.Durable,
		checkpointEvery: o.CheckpointEvery,
		pending:         lru.New[graph.NodeID, *pendingQuery](cap),
		asyncFlush:      o.AsyncFlush,
		flushTimeout:    o.FlushTimeout,
		slow:            o.SlowThreshold,
		pprof:           o.Pprof,
		readOnly:        o.ReadOnly,
		shardCfg:        o.Shard,
		tenant:          o.Tenant,
		tenantsFn:       o.Tenants,
		boundary:        graph.NodeID(sys.Aug.Entities + len(sys.Aug.Answers)),
		remoteSeqs:      make(map[uint32]uint64),
	}
	if sc := o.Shard; sc != nil {
		if sc.Map == nil {
			return nil, fmt.Errorf("server: shard config without a map")
		}
		if sc.Index < 0 || sc.Index >= sc.Map.Shards {
			return nil, fmt.Errorf("server: shard index %d out of range for %d shards", sc.Index, sc.Map.Shards)
		}
		if n := sys.RestrictServing(func(doc int) bool { return sc.Map.Owns(sc.Index, doc) }); n == 0 {
			return nil, fmt.Errorf("server: shard %d/%d owns no documents", sc.Index, sc.Map.Shards)
		}
	}
	if o.Recovered != nil {
		for src, seq := range o.Recovered.RemoteSeqs {
			s.remoteSeqs[src] = seq
		}
	}
	if o.Admission.Capacity > 0 {
		s.admit = admit.New(o.Admission)
	}
	if o.Reputation != nil {
		s.rep = vote.NewReputation(*o.Reputation)
		st.SetVoterPolicy(s.rep)
		if o.Recovered != nil {
			// Re-observe the recovered pending votes so a crash does not
			// reset in-flight voters to a clean slate. The original entity
			// signatures are gone, so these observations key on the query
			// node id — contradiction detection across a restart is
			// coarser, but scores and quarantine state re-accumulate.
			for _, v := range o.Recovered.Pending {
				s.rep.Observe(v.Voter, uint64(uint32(v.Query)), v.Best)
			}
		}
	}
	if o.Telemetry != nil {
		s.wireTelemetry(o.Telemetry)
	}
	s.nextHandle.Store(int32(graph.None))
	s.votesAccepted.Store(int64(st.TotalVotes))
	s.votesPending.Store(int64(st.Pending()))
	s.flushes.Store(int64(st.Flushes))
	if o.AsyncFlush {
		s.flusher = newFlusher(s)
		if st.NeedsFlush() {
			// A recovered pending queue can already be at the batch
			// threshold; without a nudge the flusher would sleep until the
			// next incoming vote, delaying an already-due flush.
			s.flusher.wake()
		}
	}
	return s, nil
}

// Route is one method+path of the versioned API surface. The table
// behind Routes() is the same one Handler() registers from, so the
// docs-drift test (TestAPIDocsRoutesExist) checks the real mux.
type Route struct {
	Method string
	// Path is the /v1-prefixed canonical path; every route also serves
	// at the unprefixed deprecated alias.
	Path string
}

// routeTable binds every versioned route to its handler. Handler() and
// Routes() both derive from it so the two can never disagree.
var routeTable = []struct {
	method, path string
	h            func(*Server) http.HandlerFunc
}{
	{"GET", "/healthz", func(s *Server) http.HandlerFunc { return s.handleHealth }},
	{"GET", "/stats", func(s *Server) http.HandlerFunc { return s.handleStats }},
	{"POST", "/ask", func(s *Server) http.HandlerFunc { return s.handleAsk }},
	{"POST", "/askbatch", func(s *Server) http.HandlerFunc { return s.handleAskBatch }},
	{"POST", "/vote", func(s *Server) http.HandlerFunc { return s.handleVote }},
	{"POST", "/flush", func(s *Server) http.HandlerFunc { return s.handleFlush }},
	{"POST", "/checkpoint", func(s *Server) http.HandlerFunc { return s.handleCheckpoint }},
	{"POST", "/explain", func(s *Server) http.HandlerFunc { return s.handleExplain }},
	{"POST", "/weights", func(s *Server) http.HandlerFunc { return s.handleWeights }},
	{"GET", "/snapshot", func(s *Server) http.HandlerFunc { return s.handleSnapshot }},
}

// Routes lists every versioned route a Server mounts, /v1-prefixed.
func Routes() []Route {
	out := make([]Route, len(routeTable))
	for i, rt := range routeTable {
		out[i] = Route{Method: rt.method, Path: "/v1" + rt.path}
	}
	return out
}

// Handler returns the route mux: every route under /v1 plus the
// unprefixed legacy aliases, which serve identical bodies but add a
// Deprecation header and a successor-version Link. Both registrations
// share one instrumented handler, so telemetry keeps its unversioned
// route labels. The scrape and profiling endpoints are mounted
// uninstrumented.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range routeTable {
		h := s.instrument(rt.path, rt.h(s))
		mux.HandleFunc(rt.method+" /v1"+rt.path, h)
		mux.HandleFunc(rt.method+" "+rt.path, deprecated("/v1"+rt.path, h))
	}
	if s.tel != nil {
		mux.Handle("GET /metrics", s.tel.Handler())
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// deprecated marks a legacy unprefixed route: same handler, plus the
// headers that point clients at the /v1 successor (draft-ietf-httpapi-
// deprecation-header style).
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	link := fmt.Sprintf("<%s>; rel=\"successor-version\"", successor)
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", link)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// apiErr builds an envelope error carrying its HTTP status.
func apiErr(status int, code, format string, args ...any) *api.Error {
	return &api.Error{Code: code, Message: fmt.Sprintf(format, args...), HTTPStatus: status}
}

// writeAPIErr writes the uniform error envelope; a retry hint is mirrored
// into the Retry-After header (rounded up to whole seconds).
func writeAPIErr(w http.ResponseWriter, e *api.Error) {
	if e.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((e.RetryAfterMS+999)/1000, 10))
	}
	status := e.HTTPStatus
	if status == 0 {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, api.ErrorBody{Error: *e})
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeAPIErr(w, apiErr(status, code, format, args...))
}

// writeShed surfaces an admission decision as a 429 envelope. The
// un-tenanted daemon and the default tenant keep the legacy per-reason
// codes (queue_full / rate_limited / flush_backpressure) so un-scoped
// clients see unchanged responses; every other tenant maps sheds to the
// single tenant_quota_exceeded code with the shed reason preserved in
// the message (DESIGN.md §17).
func (s *Server) writeShed(w http.ResponseWriter, d admit.Decision) {
	e := &api.Error{
		Code:         d.Reason,
		Message:      "vote shed: " + d.Reason,
		RetryAfterMS: d.RetryAfter.Milliseconds(),
		HTTPStatus:   http.StatusTooManyRequests,
	}
	if s.tenant != "" && s.tenant != DefaultTenant {
		e.Code = api.CodeTenantQuota
		e.Tenant = s.tenant
		e.Message = fmt.Sprintf("tenant %q quota exceeded: %s", s.tenant, d.Reason)
	}
	writeAPIErr(w, e)
}

// isCtxErr reports a context cancellation or deadline expiry, however
// deeply wrapped.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// clientID is the admission fairness key: the X-Client-ID header when the
// client supplies one, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, api.HealthBody{Status: status})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats assembles the /v1/stats body: the named sections (serving,
// admission, reputation, durability, ppr, tenants, ...) plus the
// deprecated flat serving fields mirrored for one release (API.md).
func (s *Server) Stats() StatsBody {
	body := s.StatsLocal()
	if s.tenantsFn != nil {
		body.Tenants = s.tenantsFn()
	}
	return body
}

// StatsLocal is Stats without the tenants section. The tenant registry
// builds per-tenant summaries from it — going through Stats there would
// recurse on the default tenant, whose tenants hook is the registry
// summary itself.
func (s *Server) StatsLocal() StatsBody {
	snap := s.sys.Engine.Serving()
	body := StatsBody{
		Tenant:         s.tenant,
		Entities:       s.sys.Aug.Entities,
		Edges:          snap.NumEdges(),
		Documents:      len(s.sys.Answers()),
		VotesAccepted:  int(s.votesAccepted.Load()),
		VotesPending:   int(s.votesPending.Load()),
		Flushes:        int(s.flushes.Load()),
		Epoch:          snap.Epoch(),
		PendingEvicted: s.pending.Evictions(),
		Draining:       s.draining.Load(),
	}
	body.Serving = &api.ServingStats{
		Entities:       body.Entities,
		Edges:          body.Edges,
		Documents:      body.Documents,
		VotesAccepted:  body.VotesAccepted,
		VotesPending:   body.VotesPending,
		Flushes:        body.Flushes,
		Epoch:          body.Epoch,
		PendingEvicted: body.PendingEvicted,
		Draining:       body.Draining,
	}
	s.flushTotals.Lock()
	ft := s.flushTotals.FlushStats
	s.flushTotals.Unlock()
	if body.Flushes > 0 {
		body.Flush = &ft
	}
	if ps, ok := s.sys.PushStats(); ok {
		body.PPR = &api.PPRStats{
			Backend:        "push",
			TrackedSeeds:   ps.TrackedSeeds,
			ResidualMass:   ps.ResidualMass,
			Pushes:         ps.Pushes,
			Updates:        ps.Updates,
			ColdRanks:      ps.ColdRanks,
			Rebuilds:       ps.Rebuilds,
			StaleFallbacks: ps.StaleFallbacks,
			Evictions:      ps.Evictions,
		}
	}
	if s.admit != nil {
		st := s.admit.Stats()
		body.Admission = &api.AdmissionStats{
			QueueCapacity: st.Capacity,
			Admitted:      st.Admitted,
			Shed:          st.Shed,
			ShedQueueFull: st.ShedQueueFull,
			ShedRate:      st.ShedRate,
			ShedFlush:     st.ShedFlush,
			Clients:       st.Clients,
		}
	}
	if s.rep != nil {
		rs := s.rep.Stats()
		body.Reputation = &rs
	}
	if s.dur != nil {
		ds := s.dur.Stats()
		body.Durability = &ds
	}
	if sc := s.shardCfg; sc != nil {
		st := &api.ShardStats{
			Index:         sc.Index,
			Shards:        sc.Map.Shards,
			OwnedDocs:     len(s.sys.ServingAnswers()),
			MapChecksum:   fmt.Sprintf("%08x", sc.Map.Checksum()),
			RemoteApplied: s.remoteApplied.Load(),
		}
		s.remoteMu.Lock()
		if len(s.remoteSeqs) > 0 {
			st.RemoteSeqs = make(map[uint32]uint64, len(s.remoteSeqs))
			for src, seq := range s.remoteSeqs {
				st.RemoteSeqs[src] = seq
			}
		}
		s.remoteMu.Unlock()
		body.Shard = st
	}
	if rs := s.replicaStats.Load(); rs != nil {
		cp := *rs
		body.Replica = &cp
	}
	return body
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req AskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	ents := req.Entities
	if len(ents) == 0 && req.Text != "" {
		ents = qa.ExtractEntities(req.Text, s.sys.Vocabulary())
	}
	if len(ents) == 0 {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "no entities: provide text with known entities or an entities map")
		return
	}
	tr := telemetry.FromContext(r.Context())
	q := qa.Question{ID: -1, Entities: ents}
	snap, ranked, cacheHit, err := s.sys.RankSnapshotTracedCtx(r.Context(), q, tr)
	if err != nil {
		if isCtxErr(err) {
			writeErr(w, http.StatusServiceUnavailable, api.CodeTimeout, "ask: %v", err)
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, "ask: %v", err)
		return
	}
	stopResolve := tr.Stage("resolve")
	handle := graph.NodeID(s.nextHandle.Add(-1))
	s.pending.Add(handle, &pendingQuery{q: q, node: graph.None})
	resp := AskResponse{Query: handle, Epoch: snap.Epoch()}
	if s.shardCfg != nil {
		// Echo the resolved entities so the router can forward a later
		// vote to the owning shard even if that shard never saw this ask.
		resp.Entities = ents
	}
	for _, a := range ranked {
		doc := s.sys.DocOf(a.Node)
		resp.Results = append(resp.Results, AskResult{Doc: doc, Title: s.sys.TitleOf(doc), Score: a.Score})
	}
	stopResolve()
	if r.URL.Query().Get("trace") == "1" && tr != nil {
		resp.Trace = &TraceBody{
			RequestID:   tr.ID(),
			CacheHit:    cacheHit,
			Stages:      tr.Stages(),
			TotalMicros: float64(tr.Elapsed().Microseconds()),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryNode resolves a client query reference to a graph node,
// materializing the query node of a pending handle on first use. When the
// handle is unknown (expired, or minted by a router whose ask another
// shard answered) and the vote carried its question's entities, the query
// is materialized one-shot from those entities instead of failing — the
// node is not entered into the pending table, since the handle is not
// this server's to reuse. The caller must hold the writer gate. The
// context is consulted only before materialization: once the node is
// attached (and WAL-logged) the operation is committed to.
func (s *Server) queryNode(ctx context.Context, ref graph.NodeID, entities map[string]int) (graph.NodeID, *api.Error) {
	if ref >= 0 {
		if !s.sys.Aug.IsQuery(ref) {
			return graph.None, apiErr(http.StatusBadRequest, api.CodeBadRequest, "node %d is not a query node", ref)
		}
		return ref, nil
	}
	pq, ok := s.pending.Get(ref)
	if !ok {
		if len(entities) == 0 {
			return graph.None, apiErr(http.StatusBadRequest, api.CodeBadRequest, "unknown or expired query handle %d", ref)
		}
		pq = &pendingQuery{q: qa.Question{ID: -1, Entities: entities}, node: graph.None}
	}
	if pq.node == graph.None {
		// Last exit before mutating the graph: a dead request must not
		// attach a node whose WAL record would then be skipped.
		if err := ctx.Err(); err != nil {
			return graph.None, apiErr(http.StatusServiceUnavailable, api.CodeTimeout, "vote: %v", err)
		}
		qn, err := s.sys.AttachQuestion(pq.q)
		if err != nil {
			return graph.None, apiErr(http.StatusUnprocessableEntity, api.CodeUnprocessable, "vote: %v", err)
		}
		pq.node = qn
		// Log the attachment the moment it happens so every later vote
		// record references a node the WAL can reproduce. A log failure
		// poisons the manager (the in-memory graph now has a node the log
		// does not), so subsequent votes are rejected until restart.
		if s.dur != nil {
			if err := s.dur.LogAttach(durable.Attach{Node: qn, Question: pq.q}); err != nil {
				return graph.None, apiErr(http.StatusServiceUnavailable, api.CodeUnavailable, "durability: %v", err)
			}
		}
	}
	return pq.node, nil
}

func (s *Server) handleVote(w http.ResponseWriter, r *http.Request) {
	if s.readOnly {
		writeErr(w, http.StatusNotImplemented, api.CodeReadOnly, "this process is a read replica; send votes to its writer")
		return
	}
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining; votes are no longer admitted")
		return
	}
	var req VoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if sc := s.shardCfg; sc != nil && !sc.Map.Owns(sc.Index, req.BestDoc) {
		writeErr(w, http.StatusMisdirectedRequest, api.CodeMisrouted,
			"document %d is owned by shard %d, not shard %d", req.BestDoc, sc.Map.Owner(req.BestDoc), sc.Index)
		return
	}
	if len(req.Voter) > maxVoterLen {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
			"voter id exceeds %d bytes", maxVoterLen)
		return
	}
	ranked := make([]graph.NodeID, 0, len(req.Ranked))
	for _, doc := range req.Ranked {
		a, err := s.sys.AnswerOf(doc)
		if err != nil {
			writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "unknown document %d", doc)
			return
		}
		ranked = append(ranked, a)
	}
	best, err := s.sys.AnswerOf(req.BestDoc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "unknown best document %d", req.BestDoc)
		return
	}
	// Advisory fast path: shed before touching the writer gate, so a
	// flood is repelled at the cost of two atomic loads, not a lock
	// acquisition behind an in-flight solve.
	client := clientID(r)
	if s.admit != nil {
		d := s.admit.Admit(client, int(s.votesPending.Load()), s.flushing.Load())
		if !d.OK {
			s.writeShed(w, d)
			return
		}
	}
	if err := s.mu.LockCtx(r.Context()); err != nil {
		if s.admit != nil {
			s.admit.Cancel(client)
		}
		writeErr(w, http.StatusServiceUnavailable, api.CodeTimeout, "vote: %v", err)
		return
	}
	defer s.mu.Unlock()
	// Authoritative re-check under the gate: the advisory depth may have
	// raced with other admissions, but the queue bound is exact.
	if s.admit != nil && s.stream.Pending() >= s.admit.Capacity() {
		s.writeShed(w, s.admit.Reject(client))
		return
	}
	if s.draining.Load() { // drain began while this request waited at the gate
		if s.admit != nil {
			s.admit.Cancel(client)
		}
		writeErr(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining; votes are no longer admitted")
		return
	}
	qn, aerr := s.queryNode(r.Context(), req.Query, req.Entities)
	if aerr != nil {
		if s.admit != nil {
			s.admit.Cancel(client)
		}
		writeAPIErr(w, aerr)
		return
	}
	v, err := vote.FromRanking(qn, ranked, best)
	if err != nil {
		if s.admit != nil {
			s.admit.Cancel(client)
		}
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "vote: %v", err)
		return
	}
	v.Weight = req.Weight
	v.Voter = req.Voter
	if err := v.Validate(); err != nil {
		if s.admit != nil {
			s.admit.Cancel(client)
		}
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "vote: %v", err)
		return
	}
	// WAL-first: the vote is logged before it enters the stream, so a
	// crash after this point replays it. The context is checked one last
	// time inside LogVoteCtx; past it, the vote is committed to and the
	// remaining stages run regardless of the client's deadline.
	if s.dur != nil {
		if err := s.dur.LogVoteCtx(r.Context(), v); err != nil {
			if s.admit != nil {
				s.admit.Cancel(client)
			}
			if isCtxErr(err) {
				writeErr(w, http.StatusServiceUnavailable, api.CodeTimeout, "vote: %v", err)
				return
			}
			writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable, "durability: %v", err)
			return
		}
	}
	if err := s.stream.PushQueue(v); err != nil {
		// The vote validated above, so this cannot be a client error; if
		// it is in the WAL, memory and disk now disagree.
		if s.dur != nil {
			s.dur.Fail()
			writeErr(w, http.StatusInternalServerError, api.CodeInternal,
				"enqueue failed after the vote was logged; durability halted, restart to recover: %v", err)
			return
		}
		writeErr(w, http.StatusInternalServerError, api.CodeInternal, "enqueue: %v", err)
		return
	}
	s.votesAccepted.Add(1)
	s.votesPending.Store(int64(s.stream.Pending()))
	var quarantined bool
	if s.rep != nil {
		verdict := s.rep.Observe(v.Voter, s.voteQueryKey(req.Query, req.Entities, qn), v.Best)
		quarantined = verdict.Quarantined
	}
	var rep *core.Report
	if s.stream.NeedsFlush() {
		if s.asyncFlush {
			s.flusher.wake()
		} else {
			var ferr *api.Error
			rep, ferr = s.flushLocked(r.Context())
			if ferr != nil && ferr.Code != api.CodeTimeout {
				writeAPIErr(w, ferr)
				return
			}
			// A timeout here means the solve never started and the batch
			// was restored to the queue: the vote itself is accepted, and
			// the flush will run on the next trigger.
		}
	}
	if s.dur != nil {
		if err := s.dur.Commit(); err != nil {
			writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable, "durability: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, VoteResponse{
		Kind:        v.Kind.String(),
		Pending:     s.stream.Pending(),
		Flushed:     rep != nil,
		Report:      rep,
		Quarantined: quarantined,
	})
}

// maxVoterLen bounds VoteRequest.Voter: long ids bloat WAL records and
// the reputation table for no legitimate reason.
const maxVoterLen = 64

// voteQueryKey derives the stable question identity a vote's reputation
// observation is keyed on: the entity signature of the served question
// when the handle (or the vote itself) still carries one, else the query
// node id. Entity signatures are what let the tracker recognize the same
// question across separate asks — every ask mints a fresh node.
func (s *Server) voteQueryKey(ref graph.NodeID, entities map[string]int, qn graph.NodeID) uint64 {
	if pq, ok := s.pending.Get(ref); ok && len(pq.q.Entities) > 0 {
		return entitiesKey(pq.q.Entities)
	}
	if len(entities) > 0 {
		return entitiesKey(entities)
	}
	return uint64(uint32(qn))
}

// entitiesKey hashes an entity multiset into a stable 64-bit key.
func entitiesKey(ents map[string]int) uint64 {
	names := make([]string, 0, len(ents))
	for n := range ents {
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		fmt.Fprintf(h, "%s=%d;", n, ents[n])
	}
	return h.Sum64()
}

// flushLocked runs one flush with durability logging and the periodic
// checkpoint policy; the caller holds the writer gate and commits the WAL
// afterwards. The flushing flag it raises is what the admission watermark
// reads. Cancellation before the solve applied anything restores the
// votes to the queue and reports a timeout; a solver failure after the
// WAL logged the batch's votes poisons durability (recovery replays
// them).
func (s *Server) flushLocked(ctx context.Context) (*core.Report, *api.Error) {
	s.flushing.Store(true)
	rep, err := s.stream.FlushCtx(ctx)
	s.flushing.Store(false)
	s.votesPending.Store(int64(s.stream.Pending()))
	s.flushes.Store(int64(s.stream.Flushes))
	if err != nil {
		if isCtxErr(err) {
			return nil, apiErr(http.StatusServiceUnavailable, api.CodeTimeout, "flush: %v", err)
		}
		if s.dur != nil {
			s.dur.Fail()
			return nil, apiErr(http.StatusInternalServerError, api.CodeInternal,
				"optimize failed after its votes were logged; durability halted, restart to recover: %v", err)
		}
		return nil, apiErr(http.StatusUnprocessableEntity, api.CodeUnprocessable, "optimize: %v", err)
	}
	if rep == nil {
		return nil, nil
	}
	s.flushTotals.Lock()
	s.flushTotals.EnumCacheHits += rep.EnumCacheHits
	s.flushTotals.EnumCacheMisses += rep.EnumCacheMisses
	s.flushTotals.EnumSeconds += rep.EnumSeconds
	s.flushTotals.JudgeSeconds += rep.JudgeSeconds
	s.flushTotals.ClusterSeconds += rep.ClusterSeconds
	s.flushTotals.SolveSeconds += rep.SolveSeconds
	s.flushTotals.MergeSeconds += rep.MergeSeconds
	s.flushTotals.Unlock()
	if s.dur != nil {
		if err := s.dur.LogFlush(rep.Applied); err != nil {
			return rep, apiErr(http.StatusServiceUnavailable, api.CodeUnavailable, "durability: %v", err)
		}
		if rep.Consumed < rep.Votes {
			// A cancelled single-vote flush requeued its unprocessed tail
			// (the only votes pending right now — the writer gate is held).
			// The flush record above is the WAL's batch boundary and erased
			// them from the replay window, so re-log them behind it or a
			// crash before the next flush would lose admitted votes.
			for _, v := range s.stream.PendingVotes() {
				if err := s.dur.LogRequeue(v); err != nil {
					return rep, apiErr(http.StatusServiceUnavailable, api.CodeUnavailable, "durability: %v", err)
				}
			}
		}
	}
	if err := s.afterFlushLocked(); err != nil {
		return rep, apiErr(http.StatusInternalServerError, api.CodeInternal, "flush applied but checkpoint failed: %v", err)
	}
	if sc := s.shardCfg; sc != nil && sc.OnFlush != nil {
		// Replicate this flush's applied weights to the peer shards. Only
		// the corpus-stable region travels: query-node IDs diverge across
		// processes. Still under the gate, so the sequence (the flush
		// counter) and the weight set are handed over consistently.
		sc.OnFlush(uint64(s.stream.Flushes), filterBelow(rep.Applied, s.boundary))
	}
	return rep, nil
}

// filterBelow keeps the weight changes whose endpoints both precede the
// runtime-node boundary — the replicable entity/answer region.
func filterBelow(ws []core.WeightChange, boundary graph.NodeID) []core.WeightChange {
	out := make([]core.WeightChange, 0, len(ws))
	for _, wc := range ws {
		if wc.From < boundary && wc.To < boundary {
			out = append(out, wc)
		}
	}
	return out
}

// afterFlushLocked runs the periodic checkpoint policy after a completed
// flush. The caller must hold the writer gate.
func (s *Server) afterFlushLocked() error {
	if s.dur == nil || s.checkpointEvery <= 0 {
		return nil
	}
	s.flushesSinceCkpt++
	if s.flushesSinceCkpt < s.checkpointEvery {
		return nil
	}
	s.flushesSinceCkpt = 0
	return s.dur.Checkpoint(s.sys, s.stream.TotalVotes, s.stream.Flushes)
}

// Checkpoint persists a full-state checkpoint now, independent of the
// periodic policy. It backs POST /v1/checkpoint and graceful shutdown.
func (s *Server) Checkpoint() error {
	if s.dur == nil {
		return fmt.Errorf("no durability layer configured")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.dur.Checkpoint(s.sys, s.stream.TotalVotes, s.stream.Flushes)
	if err == nil {
		s.flushesSinceCkpt = 0
	}
	return err
}

// BeginDrain irreversibly stops admitting writes: /v1/vote, /v1/flush,
// and /v1/checkpoint answer 503/draining envelopes from this moment on,
// while reads keep serving from the snapshot. It is safe to call from a
// signal handler before shutting the HTTP listener down.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain completes graceful shutdown after BeginDrain (which it also calls
// for stragglers): the background flusher stops, every queued vote is
// solved, and — when durability is configured — the WAL commits and a
// final checkpoint lands. If ctx expires mid-solve the flush applies its
// best-so-far weights; if it expires before the solve starts the queued
// votes remain in the WAL, so the next boot recovers them. Either way no
// admitted vote is lost.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	if s.flusher != nil {
		s.flusher.stop()
	}
	if err := s.mu.LockCtx(ctx); err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	defer s.mu.Unlock()
	if s.stream.Pending() > 0 {
		if _, ferr := s.flushLocked(ctx); ferr != nil && ferr.Code != api.CodeTimeout {
			return fmt.Errorf("server: drain flush: %s", ferr.Message)
		}
	}
	if s.dur != nil {
		if err := s.dur.Commit(); err != nil {
			return fmt.Errorf("server: drain commit: %w", err)
		}
		if err := s.dur.Checkpoint(s.sys, s.stream.TotalVotes, s.stream.Flushes); err != nil {
			return fmt.Errorf("server: drain checkpoint: %w", err)
		}
		s.flushesSinceCkpt = 0
	}
	return nil
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.readOnly {
		writeErr(w, http.StatusNotImplemented, api.CodeReadOnly, "this process is a read replica; checkpoints run on its writer")
		return
	}
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining; shutdown takes its own checkpoint")
		return
	}
	if s.dur == nil {
		writeErr(w, http.StatusNotImplemented, api.CodeNotImplemented, "checkpoint: daemon is running without a data directory")
		return
	}
	if err := s.mu.LockCtx(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, api.CodeTimeout, "checkpoint: %v", err)
		return
	}
	err := s.dur.Checkpoint(s.sys, s.stream.TotalVotes, s.stream.Flushes)
	if err == nil {
		// Only a successful checkpoint restarts the periodic clock; a
		// failed one must not stretch the automatic interval.
		s.flushesSinceCkpt = 0
	}
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, api.CodeInternal, "checkpoint: %v", err)
		return
	}
	ds := s.dur.Stats()
	writeJSON(w, http.StatusOK, api.CheckpointResponse{
		Checkpoints: int(ds.Checkpoints),
		WalSeq:      ds.LastCheckpointSeq,
		WalSegments: ds.Wal.Segments,
	})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s.readOnly {
		writeErr(w, http.StatusNotImplemented, api.CodeReadOnly, "this process is a read replica; flushes run on its writer")
		return
	}
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining; shutdown flushes the queue itself")
		return
	}
	if err := s.mu.LockCtx(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, api.CodeTimeout, "flush: %v", err)
		return
	}
	defer s.mu.Unlock()
	rep, ferr := s.flushLocked(r.Context())
	if ferr != nil {
		writeAPIErr(w, ferr)
		return
	}
	if s.dur != nil && rep != nil {
		if err := s.dur.Commit(); err != nil {
			writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable, "durability: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, VoteResponse{Pending: s.stream.Pending(), Flushed: rep != nil, Report: rep})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	ans, err := s.sys.AnswerOf(req.Doc)
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "unknown document %d", req.Doc)
		return
	}
	top := req.Top
	if top == 0 {
		top = 5
	}
	if req.Query < 0 {
		// A query handle from /ask: explain lock-free against the snapshot,
		// enumerating the virtual query's walks over the immutable CSR.
		pq, ok := s.pending.Get(req.Query)
		if !ok {
			writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "unknown or expired query handle %d", req.Query)
			return
		}
		ids, ws, _, err := s.sys.Seed(pq.q)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, "explain: %v", err)
			return
		}
		snap := s.sys.Engine.Serving()
		ex, err := snap.ExplainSeeded(ids, ws, ans, top)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, "explain: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, renderExplanation(ex, func(n graph.NodeID) string {
			if n == graph.None {
				return "q"
			}
			return snap.CSR().Name(n)
		}))
		return
	}
	// A materialized query node: walk the mutable graph under the writer
	// gate (legacy path, used for persisted/attached queries).
	if err := s.mu.LockCtx(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, api.CodeTimeout, "explain: %v", err)
		return
	}
	defer s.mu.Unlock()
	if !s.sys.Aug.IsQuery(req.Query) {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "node %d is not a query node", req.Query)
		return
	}
	ex, err := s.sys.Engine.Explain(req.Query, ans, top)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, "explain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, renderExplanation(ex, s.sys.Aug.Name))
}

// renderExplanation converts an Explanation into the response shape,
// resolving node IDs through name.
func renderExplanation(ex *core.Explanation, name func(graph.NodeID) string) ExplainResponse {
	resp := ExplainResponse{Similarity: ex.Similarity, TotalPaths: ex.TotalPaths}
	for _, pc := range ex.Paths {
		names := make([]string, len(pc.Path.Nodes))
		for i, n := range pc.Path.Nodes {
			if nm := name(n); nm != "" {
				names[i] = nm
			} else {
				names[i] = fmt.Sprintf("#%d", n)
			}
		}
		resp.Paths = append(resp.Paths, ExplainPath{Nodes: names, Score: pc.Score, Fraction: pc.Fraction})
	}
	return resp
}
