package server

import (
	"context"
	"log"
	"math/rand"
	"sync"
	"time"
)

// Backoff bounds for failed background flushes.
const (
	flushBackoffMin = 50 * time.Millisecond
	flushBackoffMax = 5 * time.Second
)

// flusher is the background flush scheduler of AsyncFlush mode. The vote
// path wakes it when the batch threshold is crossed; it solves under the
// writer gate, bounded by Options.FlushTimeout, and retries failures with
// jittered exponential backoff so a struggling solver is not hammered in
// lockstep by every waiting client.
type flusher struct {
	s *Server

	wakeCh chan struct{} // 1-slot: coalesces wake-ups
	doneCh chan struct{} // closed by stop
	exited chan struct{} // closed when run returns
	once   sync.Once
	rngMu  sync.Mutex
	rng    *rand.Rand
}

func newFlusher(s *Server) *flusher {
	f := &flusher{
		s:      s,
		wakeCh: make(chan struct{}, 1),
		doneCh: make(chan struct{}),
		exited: make(chan struct{}),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	go f.run()
	return f
}

// wake nudges the scheduler; extra wake-ups while one is pending coalesce.
func (f *flusher) wake() {
	select {
	case f.wakeCh <- struct{}{}:
	default:
	}
}

// stop shuts the scheduler down and waits for any in-flight flush to
// finish (it holds the writer gate, so the caller's next Lock serializes
// behind it anyway; waiting keeps shutdown deterministic).
func (f *flusher) stop() {
	f.once.Do(func() { close(f.doneCh) })
	<-f.exited
}

// jitter spreads a backoff delay uniformly over [d/2, d), decorrelating
// retry storms.
func (f *flusher) jitter(d time.Duration) time.Duration {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	half := d / 2
	return half + time.Duration(f.rng.Int63n(int64(half)))
}

func (f *flusher) run() {
	defer close(f.exited)
	var backoff time.Duration
	for {
		if backoff > 0 {
			t := time.NewTimer(f.jitter(backoff))
			select {
			case <-f.doneCh:
				t.Stop()
				return
			case <-t.C:
			}
		} else {
			select {
			case <-f.doneCh:
				return
			case <-f.wakeCh:
			}
		}
		if f.attempt() {
			backoff = 0
		} else if backoff == 0 {
			backoff = flushBackoffMin
		} else if backoff *= 2; backoff > flushBackoffMax {
			backoff = flushBackoffMax
		}
	}
}

// attempt runs one flush round under the writer gate, reporting whether
// the scheduler may go back to sleep (true) or should back off and retry
// (false). A timeout that fires mid-solve still succeeds — the solver
// applies its best-so-far weights (Report.Partial); only a flush that
// applied nothing is retried.
func (f *flusher) attempt() bool {
	s := f.s
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if s.flushTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.flushTimeout)
	}
	defer cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.stream.NeedsFlush() {
		return true // a competing flush got there first
	}
	rep, ferr := s.flushLocked(ctx)
	if ferr != nil {
		log.Printf("server: background flush failed (%s): %s", ferr.Code, ferr.Message)
		return false
	}
	if s.dur != nil && rep != nil {
		if err := s.dur.Commit(); err != nil {
			log.Printf("server: background flush commit failed: %v", err)
			return false
		}
	}
	// More votes may have crossed the threshold while solving; loop
	// immediately instead of waiting for the next wake.
	if s.stream.NeedsFlush() {
		f.wake()
	}
	return true
}
