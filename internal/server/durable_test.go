package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/qa"
	"kgvote/internal/wal"
)

func buildTestSystem(t *testing.T) *qa.System {
	t.Helper()
	corpus := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
	}}
	sys, err := qa.Build(corpus, core.Options{K: 3, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// askAndVote drives one full ask→vote round against ts, voting for doc
// best. It returns the vote response.
func askAndVote(t *testing.T, url string, best int) VoteResponse {
	t.Helper()
	var ask AskResponse
	if code := post(t, url+"/ask", AskRequest{Entities: map[string]int{"email": 2, "send": 1}}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	var vr VoteResponse
	if code := post(t, url+"/vote", VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: best}, &vr); code != http.StatusOK {
		t.Fatalf("vote = %d", code)
	}
	return vr
}

// askSignature renders an /ask ranking as a byte-exact string (float bits
// in hex), the recovery test's equality token.
func askSignature(t *testing.T, url string) string {
	t.Helper()
	var ask AskResponse
	if code := post(t, url+"/ask", AskRequest{Entities: map[string]int{"email": 2, "send": 1}}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	var sb strings.Builder
	for _, r := range ask.Results {
		fmt.Fprintf(&sb, "%d:%x ", r.Doc, r.Score)
	}
	return sb.String()
}

func getStats(t *testing.T, url string) StatsBody {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsBody
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestDurableCrashRecovery drives votes through the HTTP API with a
// durability manager attached, abandons the process state without any
// graceful shutdown (no checkpoint, no WAL close — a crash), reopens the
// data directory, and requires byte-identical rankings and counters.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	engine := core.Options{K: 3, L: 4}

	mgr, err := durable.Open(durable.Options{Dir: dir, Fsync: wal.SyncAlways, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	sys := buildTestSystem(t)
	if err := mgr.Bootstrap(sys); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(sys, Options{BatchSize: 2, Solver: core.StreamMulti, Durable: mgr})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	// 5 votes at batch=2: two flushes land, one vote stays pending.
	for i := 0; i < 5; i++ {
		askAndVote(t, ts.URL, i%3)
	}
	before := getStats(t, ts.URL)
	if before.VotesAccepted != 5 || before.Flushes != 2 || before.VotesPending != 1 {
		t.Fatalf("pre-crash stats = %+v", before)
	}
	if before.Durability == nil || before.Durability.FsyncPolicy != "always" {
		t.Fatalf("pre-crash durability stats = %+v", before.Durability)
	}
	sig := askSignature(t, ts.URL)
	ts.Close()
	// Crash: mgr is abandoned — no Checkpoint, no Close.

	mgr2, err := durable.Open(durable.Options{Dir: dir, Fsync: wal.SyncAlways, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	rec, err := mgr2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("Recover returned nil for a populated data dir")
	}
	srv2, err := NewWithOptions(rec.Sys, Options{BatchSize: 2, Solver: core.StreamMulti, Durable: mgr2, Recovered: rec})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	after := getStats(t, ts2.URL)
	if after.VotesAccepted != 5 || after.Flushes != 2 || after.VotesPending != 1 {
		t.Fatalf("post-recovery stats = %+v (want 5 votes, 2 flushes, 1 pending)", after)
	}
	if got := askSignature(t, ts2.URL); got != sig {
		t.Fatalf("post-recovery ranking differs:\n pre  %s\n post %s", sig, got)
	}
	// The recovered server keeps serving: one more vote completes the
	// pending batch.
	vr := askAndVote(t, ts2.URL, 2)
	if !vr.Flushed {
		t.Fatalf("6th vote should complete the recovered batch, got %+v", vr)
	}
}

// TestAsyncFlushDrainsRecoveredBacklog boots an AsyncFlush server whose
// recovered pending queue is already at the batch threshold: the flusher
// must solve it without waiting for a new vote to arrive.
func TestAsyncFlushDrainsRecoveredBacklog(t *testing.T) {
	dir := t.TempDir()
	engine := core.Options{K: 3, L: 4}
	mgr, err := durable.Open(durable.Options{Dir: dir, Fsync: wal.SyncAlways, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	sys := buildTestSystem(t)
	if err := mgr.Bootstrap(sys); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(sys, Options{BatchSize: 3, Solver: core.StreamMulti, Durable: mgr})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	// Two votes at batch 3: both stay pending. Crash.
	for i := 0; i < 2; i++ {
		askAndVote(t, ts.URL, i%3)
	}
	ts.Close()

	mgr2, err := durable.Open(durable.Options{Dir: dir, Fsync: wal.SyncAlways, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	rec, err := mgr2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Reopen at batch 2: the recovered backlog alone crosses the threshold.
	srv2, err := NewWithOptions(rec.Sys, Options{
		BatchSize: 2, Solver: core.StreamMulti,
		Durable: mgr2, Recovered: rec, AsyncFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.flusher.stop()
	deadline := time.Now().Add(5 * time.Second)
	for srv2.flushes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never drained the recovered backlog without a new vote")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv2.votesPending.Load(); got != 0 {
		t.Errorf("pending = %d after boot flush, want 0", got)
	}
}

// TestCheckpointEndpoint exercises POST /checkpoint with and without a
// durability layer.
func TestCheckpointEndpoint(t *testing.T) {
	_, plain := newTestServer(t, 1)
	if code := post(t, plain.URL+"/checkpoint", struct{}{}, nil); code != http.StatusNotImplemented {
		t.Fatalf("checkpoint without data dir = %d, want 501", code)
	}

	dir := t.TempDir()
	engine := core.Options{K: 3, L: 4}
	mgr, err := durable.Open(durable.Options{Dir: dir, Fsync: wal.SyncNever, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	sys := buildTestSystem(t)
	if err := mgr.Bootstrap(sys); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(sys, Options{BatchSize: 1, Solver: core.StreamMulti, Durable: mgr})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	askAndVote(t, ts.URL, 0)
	var out map[string]any
	if code := post(t, ts.URL+"/checkpoint", struct{}{}, &out); code != http.StatusOK {
		t.Fatalf("checkpoint = %d", code)
	}
	stats := getStats(t, ts.URL)
	if stats.Durability == nil || stats.Durability.Checkpoints < 2 { // bootstrap + manual
		t.Fatalf("durability stats after checkpoint = %+v", stats.Durability)
	}
}

// TestCheckpointEvery verifies the periodic checkpoint policy fires after
// every N flushes.
func TestCheckpointEvery(t *testing.T) {
	dir := t.TempDir()
	engine := core.Options{K: 3, L: 4}
	mgr, err := durable.Open(durable.Options{Dir: dir, Fsync: wal.SyncNever, Engine: engine})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	sys := buildTestSystem(t)
	if err := mgr.Bootstrap(sys); err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(sys, Options{BatchSize: 1, Solver: core.StreamMulti, Durable: mgr, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 4; i++ { // 4 flushes at batch=1 → 2 periodic checkpoints
		askAndVote(t, ts.URL, i%3)
	}
	stats := getStats(t, ts.URL)
	if stats.Durability == nil || stats.Durability.Checkpoints != 3 { // bootstrap + 2 periodic
		t.Fatalf("checkpoints = %+v, want 3 (bootstrap + 2 periodic)", stats.Durability)
	}
}

// TestPendingEvictionCounter fills a tiny pending-query table past
// capacity and checks the eviction counter surfaces in /stats and that the
// evicted handle is rejected.
func TestPendingEvictionCounter(t *testing.T) {
	sys := buildTestSystem(t)
	srv, err := NewWithOptions(sys, Options{BatchSize: 1, Solver: core.StreamMulti, PendingCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	asks := make([]AskResponse, 3)
	for i := range asks {
		if code := post(t, ts.URL+"/ask", AskRequest{Entities: map[string]int{"email": 1}}, &asks[i]); code != http.StatusOK {
			t.Fatalf("ask %d = %d", i, code)
		}
	}
	stats := getStats(t, ts.URL)
	if stats.PendingEvicted != 1 {
		t.Fatalf("pending_evicted = %d, want 1 (3 asks into a 2-slot table)", stats.PendingEvicted)
	}
	// The oldest handle was evicted; voting on it must fail cleanly.
	ranked := make([]int, len(asks[0].Results))
	for i, r := range asks[0].Results {
		ranked[i] = r.Doc
	}
	if code := post(t, ts.URL+"/vote", VoteRequest{Query: asks[0].Query, Ranked: ranked, BestDoc: ranked[0]}, nil); code != http.StatusBadRequest {
		t.Fatalf("vote on evicted handle = %d, want 400", code)
	}
}
