package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
)

// newReputationServer is newTestServer with voter reputation tracking and
// an instrumented registry.
func newReputationServer(t *testing.T, batch int) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	corpus := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
	}}
	sys, err := qa.Build(corpus, core.Options{K: 3, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv, err := NewWithOptions(sys, Options{
		BatchSize:  batch,
		Solver:     core.StreamMulti,
		Reputation: &vote.ReputationConfig{},
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

// voteAs runs one ask → vote round trip for the voter and returns the
// vote response.
func voteAs(t *testing.T, url, text, voter string) VoteResponse {
	t.Helper()
	var ask AskResponse
	if code := post(t, url+"/ask", AskRequest{Text: text}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	if len(ask.Results) < 2 {
		t.Fatalf("ask results: %v", ask.Results)
	}
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	var vr VoteResponse
	if code := post(t, url+"/vote", VoteRequest{
		Query: ask.Query, Ranked: ranked, BestDoc: ranked[1], Voter: voter,
	}, &vr); code != http.StatusOK {
		t.Fatalf("vote = %d", code)
	}
	return vr
}

// TestVoteReputationWiring drives the full server-side reputation loop:
// attributed votes are scored per voter, a ballot stuffer is quarantined
// and flagged in its vote response, the quarantine shows up in /stats and
// /metrics, and the flush excludes the quarantined voter's pending votes.
func TestVoteReputationWiring(t *testing.T) {
	_, ts, _ := newReputationServer(t, 100)

	// An honest voter on its own question stays clean.
	if vr := voteAs(t, ts.URL, "configure my outlook account", "alice"); vr.Quarantined {
		t.Fatal("honest first vote flagged quarantined")
	}

	// mallory re-casts the identical vote on the same question. Each
	// /v1/ask mints a fresh handle, but the query key is the entity
	// signature, so the duplicates land on one reputation key: with the
	// default penalties the fifth vote drops the score below threshold.
	for i := 0; i < 4; i++ {
		if vr := voteAs(t, ts.URL, "message delivery delays today", "mallory"); vr.Quarantined {
			t.Fatalf("vote %d already quarantined", i+1)
		}
	}
	if vr := voteAs(t, ts.URL, "message delivery delays today", "mallory"); !vr.Quarantined {
		t.Fatal("fifth duplicate vote not flagged quarantined")
	}

	// Over-long voter IDs are rejected before any state changes.
	var ask AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "my email will not send"}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	if code := post(t, ts.URL+"/vote", VoteRequest{
		Query: ask.Query, Ranked: []int{0, 2}, BestDoc: 0,
		Voter: strings.Repeat("x", 65),
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized voter id = %d, want 400", code)
	}

	var stats StatsBody
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Reputation == nil {
		t.Fatal("stats carries no reputation section")
	}
	if stats.Reputation.Voters != 2 {
		t.Errorf("voters = %d, want 2", stats.Reputation.Voters)
	}
	if stats.Reputation.QuarantinedVoters != 1 {
		t.Errorf("quarantined voters = %d, want 1", stats.Reputation.QuarantinedVoters)
	}
	if stats.Reputation.DuplicateVotes < 4 {
		t.Errorf("duplicate penalties = %d, want >= 4", stats.Reputation.DuplicateVotes)
	}

	// The flush must exclude mallory's five pending votes and keep alice's.
	var fr VoteResponse
	if code := post(t, ts.URL+"/flush", struct{}{}, &fr); code != http.StatusOK {
		t.Fatalf("flush = %d", code)
	}
	if fr.Report == nil {
		t.Fatal("flush returned no report")
	}
	if fr.Report.Quarantined != 5 {
		t.Errorf("flush quarantined %d votes, want 5", fr.Report.Quarantined)
	}

	exp := scrape(t, ts)
	if v, ok := exp.Value("kgvote_vote_reputation_quarantined_voters", nil); !ok || v != 1 {
		t.Errorf("quarantined voters gauge = %g ok=%v, want 1", v, ok)
	}
	if v, ok := exp.Value("kgvote_vote_reputation_penalties_total",
		map[string]string{"reason": vote.ReasonDuplicate}); !ok || v < 4 {
		t.Errorf("duplicate penalty counter = %g ok=%v, want >= 4", v, ok)
	}
	if v, ok := exp.Value("kgvote_votes_quarantined_total", nil); !ok || v != 5 {
		t.Errorf("quarantined votes counter = %g ok=%v, want 5", v, ok)
	}
}

// TestConcurrentVotersReputation hammers /v1/vote from many goroutines
// with distinct voter identities while inline flushes run the voter
// policy under the writer gate. Run under -race this checks the
// reputation tracker's locking against the flush path; in any mode it
// asserts the tracker saw every identity.
func TestConcurrentVotersReputation(t *testing.T) {
	srv, ts, _ := newReputationServer(t, 4)

	texts := []string{
		"my email will not send",
		"configure my outlook account",
		"message delivery delays today",
	}
	const voters = 6
	var voterWG, scrapeWG sync.WaitGroup
	for w := 0; w < voters; w++ {
		voterWG.Add(1)
		go func(w int) {
			defer voterWG.Done()
			voter := "voter-" + string(rune('a'+w))
			for i := 0; i < 12; i++ {
				var ask AskResponse
				if code := post(t, ts.URL+"/ask", AskRequest{Text: texts[(w+i)%len(texts)]}, &ask); code != http.StatusOK {
					t.Errorf("concurrent ask = %d", code)
					return
				}
				ranked := make([]int, len(ask.Results))
				for j, r := range ask.Results {
					ranked[j] = r.Doc
				}
				var vr VoteResponse
				if code := post(t, ts.URL+"/vote", VoteRequest{
					Query: ask.Query, Ranked: ranked, BestDoc: ranked[i%len(ranked)], Voter: voter,
				}, &vr); code != http.StatusOK {
					t.Errorf("concurrent vote = %d", code)
					return
				}
			}
		}(w)
	}
	// A concurrent scraper exercises rep.Stats against the vote path.
	stop := make(chan struct{})
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/stats")
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()
	voterWG.Wait()
	close(stop)
	scrapeWG.Wait()

	st := srv.rep.Stats()
	if st.Voters != voters {
		t.Errorf("tracker saw %d voters, want %d", st.Voters, voters)
	}
	var fr VoteResponse
	if code := post(t, ts.URL+"/flush", struct{}{}, &fr); code != http.StatusOK {
		t.Fatalf("final flush = %d", code)
	}
}
