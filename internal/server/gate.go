package server

import "context"

// writerGate is the single-writer lock as a one-slot channel: unlike a
// sync.Mutex, acquisition can race a request deadline, so a write request
// whose context expires while an optimization flush holds the gate turns
// into a 503/timeout instead of queueing forever.
type writerGate struct{ ch chan struct{} }

func newWriterGate() writerGate { return writerGate{ch: make(chan struct{}, 1)} }

// Lock acquires the gate unconditionally (shutdown paths and tests).
func (g writerGate) Lock() { g.ch <- struct{}{} }

// Unlock releases the gate.
func (g writerGate) Unlock() { <-g.ch }

// LockCtx acquires the gate unless ctx expires first. The uncontended
// fast path never consults the context, so an already-expired context
// still wins an idle gate race-free less often than it times out — the
// caller re-checks what it must under the gate anyway.
func (g writerGate) LockCtx(ctx context.Context) error {
	select {
	case g.ch <- struct{}{}:
		return nil
	default:
	}
	select {
	case g.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
