package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/pathidx"
	"kgvote/internal/qa"
)

func newTestServer(t *testing.T, batch int) (*Server, *httptest.Server) {
	t.Helper()
	corpus := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
	}}
	sys, err := qa.Build(corpus, core.Options{K: 3, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, batch, core.StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	var stats StatsBody
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Documents != 3 || stats.Entities == 0 || stats.Edges == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestAskVoteLoop(t *testing.T) {
	_, ts := newTestServer(t, 1)
	var ask AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "my email will not send"}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	if len(ask.Results) < 2 {
		t.Fatalf("results = %v", ask.Results)
	}
	// Scores must be descending.
	for i := 1; i < len(ask.Results); i++ {
		if ask.Results[i].Score > ask.Results[i-1].Score+1e-12 {
			t.Errorf("results not sorted: %v", ask.Results)
		}
	}
	// Vote for the second-ranked document.
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	var vr VoteResponse
	code := post(t, ts.URL+"/vote", VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: ranked[1]}, &vr)
	if code != http.StatusOK {
		t.Fatalf("vote = %d", code)
	}
	if vr.Kind != "negative" || !vr.Flushed || vr.Report == nil {
		t.Errorf("vote response = %+v", vr)
	}
	// Re-ask: the voted document should now rank first.
	var again AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "my email will not send"}, &again); code != http.StatusOK {
		t.Fatalf("re-ask = %d", code)
	}
	if again.Results[0].Doc != ranked[1] {
		t.Errorf("vote did not take effect: top doc %d, want %d", again.Results[0].Doc, ranked[1])
	}
}

func TestVoteBatchingAndFlush(t *testing.T) {
	_, ts := newTestServer(t, 5)
	var ask AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "send a message"}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	var vr VoteResponse
	if code := post(t, ts.URL+"/vote", VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: ranked[0]}, &vr); code != http.StatusOK {
		t.Fatalf("vote = %d", code)
	}
	if vr.Flushed || vr.Pending != 1 {
		t.Errorf("buffered vote response = %+v", vr)
	}
	var fr VoteResponse
	if code := post(t, ts.URL+"/flush", struct{}{}, &fr); code != http.StatusOK {
		t.Fatalf("flush = %d", code)
	}
	if !fr.Flushed || fr.Pending != 0 || fr.Report == nil {
		t.Errorf("flush response = %+v", fr)
	}
	// Idempotent empty flush.
	if code := post(t, ts.URL+"/flush", struct{}{}, &fr); code != http.StatusOK || fr.Flushed {
		t.Errorf("empty flush: code=%d resp=%+v", code, fr)
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 1)
	var ask AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Entities: map[string]int{"email": 1}}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	var ex ExplainResponse
	code := post(t, ts.URL+"/explain", ExplainRequest{Query: ask.Query, Doc: ask.Results[0].Doc, Top: 2}, &ex)
	if code != http.StatusOK {
		t.Fatalf("explain = %d", code)
	}
	if ex.Similarity <= 0 || len(ex.Paths) == 0 {
		t.Fatalf("explanation = %+v", ex)
	}
	if len(ex.Paths) > 2 {
		t.Errorf("top truncation ignored")
	}
	for _, p := range ex.Paths {
		if len(p.Nodes) < 2 {
			t.Errorf("path too short: %+v", p)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, 1)
	// Bad JSON.
	resp, err := http.Post(ts.URL+"/ask", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON ask = %d", resp.StatusCode)
	}
	// No entities.
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "nothing known"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown entities ask = %d", code)
	}
	// Unknown documents in vote.
	if code := post(t, ts.URL+"/vote", VoteRequest{Query: 0, Ranked: []int{99}, BestDoc: 99}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown doc vote = %d", code)
	}
	// Best not in ranked.
	if code := post(t, ts.URL+"/vote", VoteRequest{Query: 0, Ranked: []int{0}, BestDoc: 1}, nil); code != http.StatusBadRequest {
		t.Errorf("inconsistent vote = %d", code)
	}
	// Negative weight.
	if code := post(t, ts.URL+"/vote", VoteRequest{Query: 0, Ranked: []int{0, 1}, BestDoc: 0, Weight: -1}, nil); code != http.StatusBadRequest {
		t.Errorf("negative weight vote = %d", code)
	}
	// Unknown doc in explain.
	if code := post(t, ts.URL+"/explain", ExplainRequest{Query: 0, Doc: 99}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown doc explain = %d", code)
	}
	// Bad JSON on vote/explain.
	for _, path := range []string{"/vote", "/explain"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad JSON %s = %d", path, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/ask")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ask = %d", resp.StatusCode)
	}
}

// newBackendServer is newTestServer with a configurable scorer backend.
func newBackendServer(t *testing.T, backend pathidx.Backend) (*Server, *httptest.Server) {
	t.Helper()
	corpus := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
	}}
	sys, err := qa.Build(corpus, core.Options{K: 3, L: 4, Scorer: backend})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, 1, core.StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestStatsFlushSection: after a flush, /stats carries the cumulative
// per-stage timings and enum-cache counters of the optimization pipeline.
func TestStatsFlushSection(t *testing.T) {
	_, ts := newTestServer(t, 1)
	if st := getStats(t, ts.URL); st.Flush != nil {
		t.Fatalf("flush stats before any flush: %+v", st.Flush)
	}
	if vr := askAndVote(t, ts.URL, 1); !vr.Flushed {
		t.Fatalf("vote did not flush: %+v", vr)
	}
	st := getStats(t, ts.URL)
	if st.Flush == nil {
		t.Fatal("no flush stats after a flush")
	}
	if st.Flush.EnumCacheHits+st.Flush.EnumCacheMisses == 0 {
		t.Errorf("enum cache counters both zero: %+v", st.Flush)
	}
	total := st.Flush.EnumSeconds + st.Flush.JudgeSeconds + st.Flush.ClusterSeconds +
		st.Flush.SolveSeconds + st.Flush.MergeSeconds
	if total <= 0 {
		t.Errorf("stage timings sum to %v: %+v", total, st.Flush)
	}
	if st.PPR != nil {
		t.Errorf("enum backend exposes ppr stats: %+v", st.PPR)
	}
}

// TestStatsPPRSection: under -scorer=push, /stats carries the incremental
// tracker's counters, and the serving loop keeps working across a flush.
func TestStatsPPRSection(t *testing.T) {
	_, ts := newBackendServer(t, pathidx.BackendPush)
	if vr := askAndVote(t, ts.URL, 1); !vr.Flushed {
		t.Fatalf("vote did not flush: %+v", vr)
	}
	st := getStats(t, ts.URL)
	if st.PPR == nil {
		t.Fatal("push backend exposes no ppr stats")
	}
	if st.PPR.Backend != "push" {
		t.Errorf("backend = %q", st.PPR.Backend)
	}
	if st.PPR.Pushes == 0 || st.PPR.ColdRanks == 0 {
		t.Errorf("push counters empty: %+v", st.PPR)
	}
	// One update per publish: construction plus at least one flush.
	if st.PPR.Updates < 2 {
		t.Errorf("updates = %d, want ≥ 2", st.PPR.Updates)
	}
	// The ask path must still return sane rankings after the flush.
	var again AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "my email will not send"}, &again); code != http.StatusOK {
		t.Fatalf("re-ask = %d", code)
	}
	if len(again.Results) < 2 {
		t.Fatalf("re-ask results = %+v", again.Results)
	}
}
