package server

import (
	"log"
	"net/http"
	"time"

	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/ppr"
	"kgvote/internal/qa"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
)

// This file is the server's observability layer (DESIGN.md §10): every
// route is wrapped in a middleware that threads a request ID and span
// recorder through the context, measures latency into per-route
// histograms, tracks in-flight requests, and logs slow requests with
// their stage breakdown. The registry also carries scrape-time views of
// the serving state: snapshot epoch, per-snapshot rank-cache counters,
// the pending-query table, and the lock-free vote counters.

// routes every handler is registered (and instrumented) under.
var routes = []string{"/healthz", "/stats", "/ask", "/vote", "/flush", "/checkpoint", "/explain"}

// routeMetrics is one route's instrument set.
type routeMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
	inflight *telemetry.Gauge
}

// serverMetrics is the HTTP layer's registry slice.
type serverMetrics struct {
	routes map[string]*routeMetrics
	slow   *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	sm := &serverMetrics{routes: make(map[string]*routeMetrics, len(routes))}
	for _, route := range routes {
		l := telemetry.Labels{"route": route}
		sm.routes[route] = &routeMetrics{
			requests: reg.Counter("kgvote_server_requests_total",
				"HTTP requests served, by route.", l),
			errors: reg.Counter("kgvote_server_errors_total",
				"HTTP responses with status >= 400, by route.", l),
			latency: reg.Histogram("kgvote_server_request_seconds",
				"HTTP request latency, by route.", l, nil),
			inflight: reg.Gauge("kgvote_server_inflight_requests",
				"Requests currently being served, by route.", l),
		}
	}
	sm.slow = reg.Counter("kgvote_server_slow_requests_total",
		"Requests slower than the configured -slow-ms threshold.", nil)
	return sm
}

// registerCollectors wires the scrape-time series that read live server
// state instead of keeping parallel counters. Re-registration replaces
// the reader, so the newest server owns the series when a registry is
// shared (tests).
func (s *Server) registerCollectors(reg *telemetry.Registry) {
	reg.GaugeFunc("kgvote_core_epoch",
		"Epoch of the published serving snapshot.", nil,
		func() float64 { return float64(s.sys.Engine.Serving().Epoch()) })
	cacheStat := func(read func(h, m, e, l int64) int64) func() float64 {
		return func() float64 {
			st := s.sys.Engine.Serving().CacheStats()
			return float64(read(st.Hits, st.Misses, st.Evictions, int64(st.Len)))
		}
	}
	reg.GaugeFunc("kgvote_core_rank_cache_hits",
		"Rank-cache hits of the current snapshot (resets on epoch swap).", nil,
		cacheStat(func(h, _, _, _ int64) int64 { return h }))
	reg.GaugeFunc("kgvote_core_rank_cache_misses",
		"Rank-cache misses of the current snapshot (resets on epoch swap).", nil,
		cacheStat(func(_, m, _, _ int64) int64 { return m }))
	reg.GaugeFunc("kgvote_core_rank_cache_evictions",
		"Rank-cache evictions of the current snapshot (resets on epoch swap).", nil,
		cacheStat(func(_, _, e, _ int64) int64 { return e }))
	reg.GaugeFunc("kgvote_core_rank_cache_entries",
		"Entries cached by the current snapshot's rank cache.", nil,
		cacheStat(func(_, _, _, l int64) int64 { return l }))
	reg.CounterFunc("kgvote_server_votes_accepted_total",
		"Votes accepted into the stream.", nil,
		func() float64 { return float64(s.votesAccepted.Load()) })
	reg.GaugeFunc("kgvote_server_votes_pending",
		"Votes buffered awaiting the next flush.", nil,
		func() float64 { return float64(s.votesPending.Load()) })
	reg.CounterFunc("kgvote_server_flushes_total",
		"Optimization flushes completed by the stream.", nil,
		func() float64 { return float64(s.flushes.Load()) })
	reg.GaugeFunc("kgvote_server_pending_queries",
		"Asked-but-not-voted query handles held by the pending table.", nil,
		func() float64 { return float64(s.pending.Len()) })
	reg.CounterFunc("kgvote_server_pending_evicted_total",
		"Pending query handles evicted under capacity pressure.", nil,
		func() float64 { return float64(s.pending.Evictions()) })
	reg.GaugeFunc("kgvote_server_draining",
		"1 while the server is draining (writes rejected), else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	if s.admit != nil {
		shed := func(read func(admit.Stats) int64) func() float64 {
			return func() float64 { return float64(read(s.admit.Stats())) }
		}
		reg.CounterFunc("kgvote_server_votes_shed_total",
			"Votes shed by admission control, by reason.",
			telemetry.Labels{"reason": admit.ReasonQueueFull},
			shed(func(st admit.Stats) int64 { return st.ShedQueueFull }))
		reg.CounterFunc("kgvote_server_votes_shed_total",
			"Votes shed by admission control, by reason.",
			telemetry.Labels{"reason": admit.ReasonRate},
			shed(func(st admit.Stats) int64 { return st.ShedRate }))
		reg.CounterFunc("kgvote_server_votes_shed_total",
			"Votes shed by admission control, by reason.",
			telemetry.Labels{"reason": admit.ReasonFlush},
			shed(func(st admit.Stats) int64 { return st.ShedFlush }))
		reg.GaugeFunc("kgvote_server_admission_clients",
			"Clients tracked by the admission controller's bucket table.", nil,
			shed(func(st admit.Stats) int64 { return int64(st.Clients) }))
	}
	if _, ok := s.sys.PushStats(); ok {
		push := func(read func(ppr.IncrementalStats) float64) func() float64 {
			return func() float64 {
				st, _ := s.sys.PushStats()
				return read(st)
			}
		}
		reg.CounterFunc("kgvote_ppr_pushes_total",
			"Push operations performed by the incremental scorer (cold solves + repairs).", nil,
			push(func(st ppr.IncrementalStats) float64 { return float64(st.Pushes) }))
		reg.GaugeFunc("kgvote_ppr_tracked_seeds",
			"Seed vectors maintained incrementally by the push tracker.", nil,
			push(func(st ppr.IncrementalStats) float64 { return float64(st.TrackedSeeds) }))
		reg.GaugeFunc("kgvote_ppr_residual_mass",
			"Summed certified additive error bound across tracked seeds.", nil,
			push(func(st ppr.IncrementalStats) float64 { return st.ResidualMass }))
		reg.CounterFunc("kgvote_ppr_cold_ranks_total",
			"From-scratch push solves on the read path (untracked seeds).", nil,
			push(func(st ppr.IncrementalStats) float64 { return float64(st.ColdRanks) }))
		reg.CounterFunc("kgvote_ppr_rebuilds_total",
			"Tracked seeds re-solved after their bound crossed the rebuild ceiling.", nil,
			push(func(st ppr.IncrementalStats) float64 { return float64(st.Rebuilds) }))
		reg.CounterFunc("kgvote_ppr_stale_fallbacks_total",
			"Reads served by the exact enumerator because their snapshot trailed the tracker.", nil,
			push(func(st ppr.IncrementalStats) float64 { return float64(st.StaleFallbacks) }))
	}
	if s.rep != nil {
		rep := func(read func(vote.ReputationStats) int64) func() float64 {
			return func() float64 { return float64(read(s.rep.Stats())) }
		}
		reg.GaugeFunc("kgvote_vote_reputation_voters",
			"Distinct non-anonymous voters tracked by the reputation table.", nil,
			rep(func(st vote.ReputationStats) int64 { return int64(st.Voters) }))
		reg.GaugeFunc("kgvote_vote_reputation_quarantined_voters",
			"Voters currently quarantined by reputation.", nil,
			rep(func(st vote.ReputationStats) int64 { return int64(st.QuarantinedVoters) }))
		reg.CounterFunc("kgvote_vote_reputation_penalties_total",
			"Reputation penalties applied, by reason.",
			telemetry.Labels{"reason": vote.ReasonJudgmentRejected},
			rep(func(st vote.ReputationStats) int64 { return st.JudgmentRejections }))
		reg.CounterFunc("kgvote_vote_reputation_penalties_total",
			"Reputation penalties applied, by reason.",
			telemetry.Labels{"reason": vote.ReasonSelfContradiction},
			rep(func(st vote.ReputationStats) int64 { return st.SelfContradictions }))
		reg.CounterFunc("kgvote_vote_reputation_penalties_total",
			"Reputation penalties applied, by reason.",
			telemetry.Labels{"reason": vote.ReasonCrossContradiction},
			rep(func(st vote.ReputationStats) int64 { return st.CrossContradictions }))
		reg.CounterFunc("kgvote_vote_reputation_penalties_total",
			"Reputation penalties applied, by reason.",
			telemetry.Labels{"reason": vote.ReasonDuplicate},
			rep(func(st vote.ReputationStats) int64 { return st.DuplicateVotes }))
	}
}

// wireTelemetry builds the HTTP metrics and instruments the system and
// engine; called once from NewWithOptions when a registry is supplied.
func (s *Server) wireTelemetry(reg *telemetry.Registry) {
	s.tel = reg
	s.metrics = newServerMetrics(reg)
	s.sys.SetMetrics(qa.NewMetrics(reg))
	s.sys.Engine.SetMetrics(core.NewMetrics(reg))
	s.registerCollectors(reg)
}

// statusWriter captures the response code for the request counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route handler with request-ID minting, trace
// threading, latency/in-flight accounting, and slow-request logging.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	var rm *routeMetrics
	if s.metrics != nil {
		rm = s.metrics.routes[route]
	}
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = telemetry.NewRequestID()
		}
		tr := s.tel.NewTrace(id)
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(telemetry.WithTrace(r.Context(), tr))
		if rm != nil {
			rm.inflight.Add(1)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		d := tr.Elapsed()
		if rm != nil {
			rm.inflight.Add(-1)
			rm.requests.Inc()
			rm.latency.ObserveDuration(d)
			if sw.code >= 400 {
				rm.errors.Inc()
			}
		}
		if s.slow > 0 && d >= s.slow {
			if s.metrics != nil {
				s.metrics.slow.Inc()
			}
			log.Printf("server: slow request route=%s id=%s code=%d took=%s trace:%s",
				route, id, sw.code, d.Round(time.Microsecond), tr)
		}
	}
}
