package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kgvote/api"
	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/qa"
)

// newAdmitServer builds a test server with admission control and a batch
// size large enough that no inline flush drains the queue mid-test.
func newAdmitServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	corpus := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
	}}
	sys, err := qa.Build(corpus, core.Options{K: 3, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(sys, o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// doJSON posts body to url with optional headers, returning the response
// (caller closes Body).
func doJSON(t *testing.T, method, url string, body any, hdr map[string]string) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeEnvelope(t *testing.T, resp *http.Response) api.Error {
	t.Helper()
	defer resp.Body.Close()
	var eb api.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if eb.Error.Code == "" {
		t.Fatalf("envelope has empty code")
	}
	if eb.Error.Message == "" {
		t.Fatalf("envelope has empty message")
	}
	return eb.Error
}

// askV1 serves one question over /v1/ask and returns the handle plus the
// ranked doc IDs.
func askV1(t *testing.T, url string) (api.QueryHandle, []int) {
	t.Helper()
	resp := doJSON(t, "POST", url+"/v1/ask", AskRequest{Text: "email stuck in outbox"}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask status = %d", resp.StatusCode)
	}
	var ask AskResponse
	if err := json.NewDecoder(resp.Body).Decode(&ask); err != nil {
		t.Fatal(err)
	}
	docs := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		docs[i] = r.Doc
	}
	return ask.Query, docs
}

func TestErrorEnvelopeShape(t *testing.T) {
	_, ts := newTestServer(t, 100)
	cases := []struct {
		name       string
		path       string
		body       any
		wantStatus int
		wantCode   string
	}{
		{"ask garbage body", "/v1/ask", "not json", http.StatusBadRequest, api.CodeBadRequest},
		{"ask no entities", "/v1/ask", AskRequest{Text: "zzz qqq"}, http.StatusBadRequest, api.CodeBadRequest},
		{"vote unknown doc", "/v1/vote", VoteRequest{Query: -2, Ranked: []int{77}, BestDoc: 77}, http.StatusBadRequest, api.CodeBadRequest},
		{"vote unknown handle", "/v1/vote", VoteRequest{Query: -9999, Ranked: []int{0, 1}, BestDoc: 1}, http.StatusBadRequest, api.CodeBadRequest},
		{"explain unknown doc", "/v1/explain", ExplainRequest{Query: -2, Doc: 77}, http.StatusBadRequest, api.CodeBadRequest},
		{"checkpoint without durability", "/v1/checkpoint", nil, http.StatusNotImplemented, api.CodeNotImplemented},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doJSON(t, "POST", ts.URL+tc.path, tc.body, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if e := decodeEnvelope(t, resp); e.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Code, tc.wantCode)
			}
		})
	}
}

func TestLegacyAliasDeprecationHeaders(t *testing.T) {
	_, ts := newTestServer(t, 100)
	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("Deprecation"); got != "true" {
			t.Errorf("legacy %s Deprecation header = %q, want \"true\"", path, got)
		}
		if got := resp.Header.Get("Link"); got != fmt.Sprintf("</v1%s>; rel=\"successor-version\"", path) {
			t.Errorf("legacy %s Link header = %q", path, got)
		}
		v1, err := http.Get(ts.URL + "/v1" + path)
		if err != nil {
			t.Fatal(err)
		}
		v1.Body.Close()
		if got := v1.Header.Get("Deprecation"); got != "" {
			t.Errorf("/v1%s carries a Deprecation header %q", path, got)
		}
	}
	// The alias serves the same body.
	legacy, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var ls StatsBody
	if err := json.NewDecoder(legacy.Body).Decode(&ls); err != nil {
		t.Fatal(err)
	}
	legacy.Body.Close()
	v1, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var vs StatsBody
	if err := json.NewDecoder(v1.Body).Decode(&vs); err != nil {
		t.Fatal(err)
	}
	v1.Body.Close()
	if ls.Documents != vs.Documents || ls.Entities != vs.Entities {
		t.Errorf("legacy and /v1 stats disagree: %+v vs %+v", ls, vs)
	}
}

func TestVoteShedQueueFull(t *testing.T) {
	srv, ts := newAdmitServer(t, Options{
		BatchSize: 100, Solver: core.StreamMulti,
		Admission: admit.Config{Capacity: 2},
	})
	handle, docs := askV1(t, ts.URL)
	votes := func() VoteRequest { return VoteRequest{Query: handle, Ranked: docs, BestDoc: docs[len(docs)-1]} }
	for i := 0; i < 2; i++ {
		resp := doJSON(t, "POST", ts.URL+"/v1/vote", votes(), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("vote %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := doJSON(t, "POST", ts.URL+"/v1/vote", votes(), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow vote status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After header")
	}
	e := decodeEnvelope(t, resp)
	if e.Code != api.CodeQueueFull {
		t.Errorf("code = %q, want %q", e.Code, api.CodeQueueFull)
	}
	if e.RetryAfterMS <= 0 {
		t.Errorf("retry_after_ms = %d, want > 0", e.RetryAfterMS)
	}
	st := srv.admit.Stats()
	if st.Admitted != 2 || st.ShedQueueFull != 1 {
		t.Errorf("admission stats = %+v, want 2 admitted / 1 shed", st)
	}
}

func TestVoteShedRateLimited(t *testing.T) {
	now := time.Unix(1000, 0)
	_, ts := newAdmitServer(t, Options{
		BatchSize: 100, Solver: core.StreamMulti,
		Admission: admit.Config{
			Capacity:      100,
			PerClientRate: 1, PerClientBurst: 1,
			Now: func() time.Time { return now }, // frozen: no refill
		},
	})
	handle, docs := askV1(t, ts.URL)
	req := VoteRequest{Query: handle, Ranked: docs, BestDoc: docs[len(docs)-1]}
	hdr := map[string]string{"X-Client-ID": "flooder"}
	resp := doJSON(t, "POST", ts.URL+"/v1/vote", req, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first vote status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = doJSON(t, "POST", ts.URL+"/v1/vote", req, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second vote status = %d, want 429", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != api.CodeRateLimited {
		t.Errorf("code = %q, want %q", e.Code, api.CodeRateLimited)
	}
	// A different client still has its own full bucket.
	resp = doJSON(t, "POST", ts.URL+"/v1/vote", req, map[string]string{"X-Client-ID": "polite"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("other client's vote status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestVoteShedFlushBackpressure(t *testing.T) {
	srv, ts := newAdmitServer(t, Options{
		BatchSize: 100, Solver: core.StreamMulti,
		Admission: admit.Config{Capacity: 100, Watermark: 1},
	})
	handle, docs := askV1(t, ts.URL)
	req := VoteRequest{Query: handle, Ranked: docs, BestDoc: docs[len(docs)-1]}
	resp := doJSON(t, "POST", ts.URL+"/v1/vote", req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vote status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Without a flush in flight the watermark is inert.
	resp = doJSON(t, "POST", ts.URL+"/v1/vote", req, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vote below capacity status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	// Simulate an in-flight flush: depth (2) >= watermark (1) now sheds.
	srv.flushing.Store(true)
	defer srv.flushing.Store(false)
	resp = doJSON(t, "POST", ts.URL+"/v1/vote", req, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("vote during flush status = %d, want 429", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != api.CodeFlushBackpressure {
		t.Errorf("code = %q, want %q", e.Code, api.CodeFlushBackpressure)
	}
}

func TestDrainRejectsWritesKeepsReads(t *testing.T) {
	srv, ts := newAdmitServer(t, Options{BatchSize: 100, Solver: core.StreamMulti})
	handle, docs := askV1(t, ts.URL)
	srv.BeginDrain()
	for _, path := range []string{"/v1/vote", "/v1/flush", "/v1/checkpoint"} {
		resp := doJSON(t, "POST", ts.URL+path, VoteRequest{Query: handle, Ranked: docs, BestDoc: docs[0]}, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s status = %d during drain, want 503", path, resp.StatusCode)
		}
		if e := decodeEnvelope(t, resp); e.Code != api.CodeDraining {
			t.Errorf("%s code = %q, want %q", path, e.Code, api.CodeDraining)
		}
	}
	// Reads keep serving.
	if _, docs := askV1(t, ts.URL); len(docs) == 0 {
		t.Error("ask stopped returning results during drain")
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb api.HealthBody
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hb.Status != "draining" {
		t.Errorf("healthz status = %q during drain, want draining", hb.Status)
	}
	var stats StatsBody
	sresp := doJSON(t, "GET", ts.URL+"/v1/stats", nil, nil)
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if !stats.Draining {
		t.Error("stats.Draining = false during drain")
	}
}

func TestDrainFlushesPendingVotes(t *testing.T) {
	srv, ts := newAdmitServer(t, Options{BatchSize: 100, Solver: core.StreamMulti})
	handle, docs := askV1(t, ts.URL)
	for i := 0; i < 3; i++ {
		resp := doJSON(t, "POST", ts.URL+"/v1/vote",
			VoteRequest{Query: handle, Ranked: docs, BestDoc: docs[len(docs)-1]}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("vote %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := srv.stream.Pending(); got != 0 {
		t.Errorf("pending = %d after drain, want 0", got)
	}
	if got := srv.stream.Flushes; got != 1 {
		t.Errorf("flushes = %d after drain, want 1", got)
	}
}

func TestVoteTimeoutAtWriterGate(t *testing.T) {
	srv, ts := newAdmitServer(t, Options{BatchSize: 100, Solver: core.StreamMulti})
	handle, docs := askV1(t, ts.URL)
	srv.mu.Lock() // a "flush" holds the gate
	defer srv.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(VoteRequest{Query: handle, Ranked: docs, BestDoc: docs[0]}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/vote", &buf).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	var eb api.ErrorBody
	if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != api.CodeTimeout {
		t.Errorf("code = %q, want %q", eb.Error.Code, api.CodeTimeout)
	}
}

func TestAsyncFlushBackgroundSolve(t *testing.T) {
	srv, ts := newAdmitServer(t, Options{
		BatchSize: 2, Solver: core.StreamMulti,
		AsyncFlush: true,
	})
	defer srv.flusher.stop()
	handle, docs := askV1(t, ts.URL)
	for i := 0; i < 2; i++ {
		resp := doJSON(t, "POST", ts.URL+"/v1/vote",
			VoteRequest{Query: handle, Ranked: docs, BestDoc: docs[len(docs)-1]}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("vote %d status = %d", i, resp.StatusCode)
		}
		var vr VoteResponse
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if vr.Flushed {
			t.Error("async vote reported Flushed = true; solves must run off the request path")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.flushes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never solved the full batch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.votesPending.Load(); got != 0 {
		t.Errorf("pending = %d after background flush, want 0", got)
	}
}

// TestOverloadFloodExactCapacity is the overload acceptance check at unit
// scale: flooding far past capacity from many goroutines admits exactly
// Capacity votes; everything else is shed with a 429 + Retry-After.
func TestOverloadFloodExactCapacity(t *testing.T) {
	const capacity, workers, per = 8, 16, 12
	const flood = workers * per
	srv, ts := newAdmitServer(t, Options{
		BatchSize: flood + 1, // the queue can never drain mid-flood
		Solver:    core.StreamMulti,
		Admission: admit.Config{Capacity: capacity},
	})
	handle, docs := askV1(t, ts.URL)
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp := doJSON(t, "POST", ts.URL+"/v1/vote",
					VoteRequest{Query: handle, Ranked: docs, BestDoc: docs[len(docs)-1]},
					map[string]string{"X-Client-ID": fmt.Sprintf("c%d", w)})
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					shed.Add(1)
				default:
					other.Add(1)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	if got := ok.Load(); got != capacity {
		t.Errorf("admitted = %d, want exactly %d", got, capacity)
	}
	if got := shed.Load(); got != flood-capacity {
		t.Errorf("shed = %d, want %d", got, flood-capacity)
	}
	if got := other.Load(); got != 0 {
		t.Errorf("%d responses were neither 200 nor 429", got)
	}
	if got := srv.stream.Pending(); got != capacity {
		t.Errorf("queue depth = %d, want %d", got, capacity)
	}
	st := srv.admit.Stats()
	if st.Admitted != capacity {
		t.Errorf("controller admitted = %d, want %d", st.Admitted, capacity)
	}
}
