package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestAskServesDuringWriterStall is the regression test for the
// serve-time stall window: before the snapshot path, /ask serialized
// behind the same mutex as /vote and /flush, so a long SGP solve starved
// every reader. Here the writer lock is held (simulating an in-flight
// flush) while /ask and /stats must still answer from the published
// snapshot.
func TestAskServesDuringWriterStall(t *testing.T) {
	srv, ts := newTestServer(t, 100)

	// Warm ask while unlocked to learn the epoch.
	var warm AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "my email will not send"}, &warm); code != http.StatusOK {
		t.Fatalf("warm ask = %d", code)
	}

	srv.mu.Lock() // the "flush" is now in flight
	type result struct {
		code int
		resp AskResponse
	}
	done := make(chan result, 1)
	go func() {
		var r result
		b, _ := json.Marshal(AskRequest{Text: "configure my outlook account"})
		resp, err := http.Post(ts.URL+"/ask", "application/json", bytes.NewReader(b))
		if err != nil {
			done <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		r.code = resp.StatusCode
		_ = json.NewDecoder(resp.Body).Decode(&r.resp)
		done <- r
	}()
	select {
	case r := <-done:
		if r.code != http.StatusOK {
			srv.mu.Unlock()
			t.Fatalf("ask during writer stall = %d", r.code)
		}
		if r.resp.Epoch != warm.Epoch {
			srv.mu.Unlock()
			t.Fatalf("ask during stall served epoch %d, want previous epoch %d", r.resp.Epoch, warm.Epoch)
		}
		if len(r.resp.Results) == 0 {
			srv.mu.Unlock()
			t.Fatal("ask during stall returned no results")
		}
	case <-time.After(5 * time.Second):
		srv.mu.Unlock()
		t.Fatal("/ask blocked behind the writer lock")
	}

	// /stats must be lock-free too.
	statsDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			statsDone <- -1
			return
		}
		resp.Body.Close()
		statsDone <- resp.StatusCode
	}()
	select {
	case code := <-statsDone:
		if code != http.StatusOK {
			srv.mu.Unlock()
			t.Fatalf("stats during writer stall = %d", code)
		}
	case <-time.After(5 * time.Second):
		srv.mu.Unlock()
		t.Fatal("/stats blocked behind the writer lock")
	}
	srv.mu.Unlock()
}

// TestConcurrentAskVoteFlush hammers the read path from several
// goroutines while a single writer votes and flushes. Run under -race
// this is the torn-read check of the snapshot design; in any mode it
// asserts that post-flush epochs advance monotonically.
func TestConcurrentAskVoteFlush(t *testing.T) {
	_, ts := newTestServer(t, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: concurrent askers with a couple of distinct questions (one
	// repeats, exercising the rank cache; epochs observed must never
	// decrease per goroutine).
	texts := []string{
		"my email will not send",
		"configure my outlook account",
		"message delivery delays today",
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var ask AskResponse
				code := post(t, ts.URL+"/ask", AskRequest{Text: texts[(w+i)%len(texts)]}, &ask)
				if code != http.StatusOK {
					t.Errorf("concurrent ask = %d", code)
					return
				}
				if ask.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", ask.Epoch, lastEpoch)
					return
				}
				lastEpoch = ask.Epoch
				for j := 1; j < len(ask.Results); j++ {
					if ask.Results[j].Score > ask.Results[j-1].Score+1e-12 {
						t.Errorf("torn ranking: %v", ask.Results)
						return
					}
				}
			}
		}(w)
	}

	// The single writer: ask → vote (batch 2 flushes every other vote),
	// with an explicit /flush at the end. Epochs in /stats must strictly
	// increase across flushes.
	var epochs []uint64
	for i := 0; i < 6; i++ {
		var ask AskResponse
		if code := post(t, ts.URL+"/ask", AskRequest{Text: texts[i%len(texts)]}, &ask); code != http.StatusOK {
			t.Fatalf("writer ask = %d", code)
		}
		if len(ask.Results) < 2 {
			t.Fatalf("writer ask results: %v", ask.Results)
		}
		ranked := make([]int, len(ask.Results))
		for j, r := range ask.Results {
			ranked[j] = r.Doc
		}
		var vr VoteResponse
		if code := post(t, ts.URL+"/vote", VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: ranked[1]}, &vr); code != http.StatusOK {
			t.Fatalf("writer vote = %d", code)
		}
		if vr.Flushed {
			var stats StatsBody
			resp, err := http.Get(ts.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			epochs = append(epochs, stats.Epoch)
		}
	}
	var fr VoteResponse
	if code := post(t, ts.URL+"/flush", struct{}{}, &fr); code != http.StatusOK {
		t.Fatalf("final flush = %d", code)
	}
	close(stop)
	wg.Wait()

	if len(epochs) < 2 {
		t.Fatalf("expected at least 2 flushes, saw %d", len(epochs))
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Errorf("post-flush epochs not strictly increasing: %v", epochs)
		}
	}
}
