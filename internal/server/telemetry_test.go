package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/telemetry"
)

// newTelemetryServer is newTestServer with an instrumented registry.
func newTelemetryServer(t *testing.T, batch int) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	corpus := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
	}}
	sys, err := qa.Build(corpus, core.Options{K: 3, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv, err := NewWithOptions(sys, Options{
		BatchSize: batch,
		Solver:    core.StreamMulti,
		Telemetry: reg,
		Pprof:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

func scrape(t *testing.T, ts *httptest.Server) *telemetry.Exposition {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("content type = %q", ct)
	}
	exp, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	return exp
}

// TestMetricsEndpoint drives the API and asserts the scrape carries
// series from every instrumented layer with consistent values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTelemetryServer(t, 1)

	var ask AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "my email will not send"}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	var vr VoteResponse
	if code := post(t, ts.URL+"/vote", VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: ranked[1]}, &vr); code != http.StatusOK {
		t.Fatalf("vote = %d", code)
	}
	// A request that errors (bad body) must land in the error counter.
	if code := post(t, ts.URL+"/ask", AskRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty ask = %d, want 400", code)
	}

	exp := scrape(t, ts)
	if err := exp.CheckHistograms(); err != nil {
		t.Fatalf("histogram invariants: %v", err)
	}

	askRoute := map[string]string{"route": "/ask"}
	if v, ok := exp.Value("kgvote_server_requests_total", askRoute); !ok || v != 2 {
		t.Fatalf("ask requests = %g ok=%v, want 2", v, ok)
	}
	if v, ok := exp.Value("kgvote_server_errors_total", askRoute); !ok || v != 1 {
		t.Fatalf("ask errors = %g ok=%v, want 1", v, ok)
	}
	if v, ok := exp.Value("kgvote_server_inflight_requests", askRoute); !ok || v != 0 {
		t.Fatalf("inflight = %g ok=%v, want 0 at rest", v, ok)
	}
	if v, ok := exp.Value("kgvote_server_request_seconds_count", askRoute); !ok || v != 2 {
		t.Fatalf("request latency count = %g ok=%v, want 2", v, ok)
	}
	// qa layer: one successful ranking.
	if v, ok := exp.Value("kgvote_qa_ask_seconds_count", nil); !ok || v != 1 {
		t.Fatalf("qa ask count = %g ok=%v, want 1", v, ok)
	}
	if v, ok := exp.Value("kgvote_qa_rank_cache_misses_total", nil); !ok || v != 1 {
		t.Fatalf("cache misses = %g ok=%v, want 1 (cold cache)", v, ok)
	}
	// core layer: batch=1, so the vote flushed once.
	if v, ok := exp.Value("kgvote_core_flushes_total", nil); !ok || v != 1 {
		t.Fatalf("core flushes = %g ok=%v, want 1", v, ok)
	}
	if v, ok := exp.Value("kgvote_core_flush_seconds_count", nil); !ok || v != 1 {
		t.Fatalf("flush duration count = %g ok=%v, want 1", v, ok)
	}
	if v, ok := exp.Value("kgvote_server_votes_accepted_total", nil); !ok || v != 1 {
		t.Fatalf("votes accepted = %g ok=%v, want 1", v, ok)
	}
	if v, ok := exp.Value("kgvote_core_epoch", nil); !ok || v < 1 {
		t.Fatalf("epoch = %g ok=%v, want ≥ 1 after a flush", v, ok)
	}

	// The acceptance bar: at least 12 distinct families spanning layers.
	fams := exp.Families()
	if len(fams) < 12 {
		t.Fatalf("only %d metric families: %v", len(fams), fams)
	}
	for _, prefix := range []string{"kgvote_server_", "kgvote_qa_", "kgvote_core_"} {
		found := false
		for _, f := range fams {
			if strings.HasPrefix(f, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no %s* family in scrape: %v", prefix, fams)
		}
	}
}

// TestAskTrace asserts /ask?trace=1 returns inline stage timings and
// the request ID round-trips through X-Request-ID.
func TestAskTrace(t *testing.T) {
	_, ts, _ := newTelemetryServer(t, 4)

	body := strings.NewReader(`{"text": "my email will not send"}`)
	req, err := http.NewRequest("POST", ts.URL+"/ask?trace=1", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-test-1" {
		t.Fatalf("X-Request-ID echo = %q", got)
	}
	var ask AskResponse
	if err := json.NewDecoder(resp.Body).Decode(&ask); err != nil {
		t.Fatal(err)
	}
	if ask.Trace == nil {
		t.Fatal("trace=1 must attach a trace body")
	}
	if ask.Trace.RequestID != "trace-test-1" {
		t.Fatalf("trace request id = %q", ask.Trace.RequestID)
	}
	if ask.Trace.CacheHit {
		t.Fatal("first ask must be a cache miss")
	}
	names := make(map[string]bool)
	for _, s := range ask.Trace.Stages {
		if s.Micros < 0 {
			t.Fatalf("negative stage duration: %+v", s)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"seed", "rank", "resolve"} {
		if !names[want] {
			t.Fatalf("missing stage %q in %v", want, ask.Trace.Stages)
		}
	}

	// Second identical ask: served from the snapshot rank cache.
	var again AskResponse
	if code := post(t, ts.URL+"/ask?trace=1", AskRequest{Text: "my email will not send"}, &again); code != http.StatusOK {
		t.Fatalf("re-ask = %d", code)
	}
	if again.Trace == nil || !again.Trace.CacheHit {
		t.Fatalf("second identical ask should be a cache hit: %+v", again.Trace)
	}
	if again.Trace.RequestID == "" {
		t.Fatal("server must mint a request ID when the client sends none")
	}

	// Without trace=1 the body stays clean.
	var plain AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "my email will not send"}, &plain); code != http.StatusOK {
		t.Fatalf("plain ask = %d", code)
	}
	if plain.Trace != nil {
		t.Fatal("trace body attached without trace=1")
	}
}

// TestMetricsMonotonicAcrossScrapes drives traffic between two scrapes
// and asserts counters only move up.
func TestMetricsMonotonicAcrossScrapes(t *testing.T) {
	_, ts, _ := newTelemetryServer(t, 2)

	ask := func() {
		var a AskResponse
		if code := post(t, ts.URL+"/ask", AskRequest{Text: "configure outlook account"}, &a); code != http.StatusOK {
			t.Fatalf("ask = %d", code)
		}
	}
	ask()
	first := scrape(t, ts)
	ask()
	ask()
	second := scrape(t, ts)

	for _, name := range []string{
		"kgvote_server_requests_total",
		"kgvote_server_request_seconds_count",
	} {
		route := map[string]string{"route": "/ask"}
		v1, ok1 := first.Value(name, route)
		v2, ok2 := second.Value(name, route)
		if !ok1 || !ok2 {
			t.Fatalf("%s missing from a scrape", name)
		}
		if v2 < v1 {
			t.Fatalf("%s went backwards: %g -> %g", name, v1, v2)
		}
		if v2 != v1+2 {
			t.Fatalf("%s = %g -> %g, want +2", name, v1, v2)
		}
	}
	// Identical questions hit the rank cache after the first miss.
	h2, _ := second.Value("kgvote_qa_rank_cache_hits_total", nil)
	m2, _ := second.Value("kgvote_qa_rank_cache_misses_total", nil)
	if m2 != 1 || h2 != 2 {
		t.Fatalf("cache hits/misses = %g/%g, want 2/1", h2, m2)
	}
}

// TestPprofMounted checks the profiling index answers when enabled.
func TestPprofMounted(t *testing.T) {
	_, ts, _ := newTelemetryServer(t, 1)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", resp.StatusCode)
	}
}

// TestNoTelemetryServesNoMetrics: a server without a registry must not
// expose /metrics but must keep serving the API.
func TestNoTelemetryServesNoMetrics(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without telemetry = %d, want 404", resp.StatusCode)
	}
	var ask AskResponse
	if code := post(t, ts.URL+"/ask?trace=1", AskRequest{Text: "message delivery delays"}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	// The trace body still works: traces run on the real clock when no
	// registry is wired.
	if ask.Trace == nil {
		t.Fatal("trace=1 must work without telemetry")
	}
}

// TestSlowRequestCounter exercises the slow-request path with a
// threshold of one nanosecond so every request qualifies.
func TestSlowRequestCounter(t *testing.T) {
	corpus := &qa.Corpus{Docs: []qa.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "email": 1}},
	}}
	sys, err := qa.Build(corpus, core.Options{K: 2, L: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv, err := NewWithOptions(sys, Options{
		BatchSize:     1,
		Solver:        core.StreamMulti,
		Telemetry:     reg,
		SlowThreshold: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ask AskResponse
	if code := post(t, ts.URL+"/ask", AskRequest{Text: "email outbox"}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	exp := scrape(t, ts)
	if v, ok := exp.Value("kgvote_server_slow_requests_total", nil); !ok || v < 1 {
		t.Fatalf("slow requests = %g ok=%v, want ≥ 1", v, ok)
	}
}
