package server

// Sharded-serving endpoints (DESIGN.md §14): the batch ask surface, the
// peer weight-replication receiver, and the snapshot export that feeds
// read replicas. The single-writer discipline is unchanged — replication
// pushes are just one more writer that serializes behind the gate.

import (
	"encoding/json"
	"net/http"
	"strconv"

	"kgvote/api"
	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/qa"
	"kgvote/internal/shard"
)

// handleAskBatch serves POST /v1/askbatch: a read-only positional batch
// ranking against the serving snapshot. Batch results carry no vote
// handles (use /v1/ask when a follow-up vote is expected), so the
// pending-handle table is never touched.
func (s *Server) handleAskBatch(w http.ResponseWriter, r *http.Request) {
	var req api.AskBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Questions) == 0 {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "askbatch: empty batch")
		return
	}
	qs := make([]qa.Question, len(req.Questions))
	for i, q := range req.Questions {
		ents := q.Entities
		if len(ents) == 0 && q.Text != "" {
			ents = qa.ExtractEntities(q.Text, s.sys.Vocabulary())
		}
		if len(ents) == 0 {
			writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "askbatch: question %d has no entities", i)
			return
		}
		qs[i] = qa.Question{ID: -1, Entities: ents}
	}
	snap := s.sys.Engine.Serving()
	batch, err := s.sys.AskBatch(qs, 0)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, "askbatch: %v", err)
		return
	}
	resp := api.AskBatchResponse{Epoch: snap.Epoch(), Results: make([][]api.AskResult, len(batch))}
	for i, docs := range batch {
		rs := make([]api.AskResult, len(docs))
		for j, d := range docs {
			rs[j] = api.AskResult{Doc: d.Doc, Title: d.Title, Score: d.Score}
		}
		resp.Results[i] = rs
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWeights serves POST /v1/weights: a peer shard replicating the
// absolute weight set of one completed flush. The per-source sequence is
// the gap detector — Seq == last+1 applies, Seq <= last is an idempotent
// duplicate (the peer retried an acknowledged push), anything else is a
// gap the receiver cannot bridge from deltas alone, answered with a 409
// weights_gap envelope so the source falls back to a Full export. The
// set is WAL-logged (RecRemote) before it is applied, mirroring the
// local flush protocol, so a crash replays it.
func (s *Server) handleWeights(w http.ResponseWriter, r *http.Request) {
	if s.readOnly {
		writeErr(w, http.StatusNotImplemented, api.CodeReadOnly, "this process is a read replica; it syncs from its writer's snapshots")
		return
	}
	sc := s.shardCfg
	if sc == nil {
		writeErr(w, http.StatusNotImplemented, api.CodeNotImplemented, "weights: this process is not part of a sharded cluster")
		return
	}
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining; replication pushes are no longer admitted")
		return
	}
	var req api.WeightPushRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "bad request body: %v", err)
		return
	}
	if req.Source < 0 || req.Source >= sc.Map.Shards {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "weights: source shard %d out of range for %d shards", req.Source, sc.Map.Shards)
		return
	}
	if req.Source == sc.Index {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "weights: source shard %d is this shard", req.Source)
		return
	}
	if req.Seq == 0 {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "weights: sequence 0 is invalid (sequences start at 1)")
		return
	}
	set := api.WeightEdgesToCore(req.Set)
	for _, wc := range set {
		if wc.From < 0 || wc.From >= s.boundary || wc.To < 0 || wc.To >= s.boundary {
			writeErr(w, http.StatusBadRequest, api.CodeBadRequest,
				"weights: edge %d->%d is outside the replicable region [0,%d)", wc.From, wc.To, s.boundary)
			return
		}
	}
	if err := s.mu.LockCtx(r.Context()); err != nil {
		writeErr(w, http.StatusServiceUnavailable, api.CodeTimeout, "weights: %v", err)
		return
	}
	defer s.mu.Unlock()
	src := uint32(req.Source)
	s.remoteMu.Lock()
	last := s.remoteSeqs[src]
	s.remoteMu.Unlock()
	if req.Seq <= last {
		// Duplicate of an acknowledged push (the source retried after a
		// lost response). Weights are absolute, so skipping is exact.
		writeJSON(w, http.StatusOK, api.WeightPushResponse{Applied: 0, Seq: last})
		return
	}
	if !req.Full && req.Seq != last+1 {
		writeErr(w, http.StatusConflict, api.CodeWeightsGap,
			"weights: push seq %d from shard %d skips last applied %d; re-send a full export", req.Seq, req.Source, last)
		return
	}
	if s.dur != nil {
		if err := s.dur.LogRemote(durable.Remote{Source: src, Seq: req.Seq, Set: set}); err != nil {
			writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable, "durability: %v", err)
			return
		}
	}
	if len(set) > 0 {
		if err := s.sys.Engine.ApplyWeightSet(set); err != nil {
			// The set validated above and is in the WAL: memory and disk
			// now disagree, the same poison case as a failed local flush.
			if s.dur != nil {
				s.dur.Fail()
			}
			writeErr(w, http.StatusInternalServerError, api.CodeInternal,
				"weights: apply failed after the set was logged; durability halted, restart to recover: %v", err)
			return
		}
	}
	s.remoteMu.Lock()
	s.remoteSeqs[src] = req.Seq
	s.remoteMu.Unlock()
	s.remoteApplied.Add(1)
	if s.dur != nil {
		if err := s.dur.Commit(); err != nil {
			writeErr(w, http.StatusServiceUnavailable, api.CodeUnavailable, "durability: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, api.WeightPushResponse{Applied: len(set), Seq: req.Seq})
}

// handleSnapshot serves GET /v1/snapshot?since=N: the replicable weight
// region of the current serving snapshot as a CRC-framed binary export,
// or 204 when the serving epoch has not advanced past since. Lock-free:
// it reads the immutable epoch-stamped snapshot, never the mutable graph.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "snapshot: bad since %q: %v", raw, err)
			return
		}
		since = v
	}
	snap := s.sys.Engine.Serving()
	epoch := snap.Epoch()
	if epoch <= since {
		w.Header().Set("X-KG-Epoch", strconv.FormatUint(epoch, 10))
		w.WriteHeader(http.StatusNoContent)
		return
	}
	frame := shard.EncodeSnapshot(epoch, snap.ExportWeights(s.boundary))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-KG-Epoch", strconv.FormatUint(epoch, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	_, _ = w.Write(frame)
}

// ImportSnapshot installs a writer's exported weight set at the writer's
// epoch, publishing a fresh serving snapshot. It is the replica
// follower's apply hook.
func (s *Server) ImportSnapshot(ws []core.WeightChange, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Engine.ImportWeightSet(ws, epoch)
}

// ExportReplicated returns the replicable weight region of the current
// graph together with the flush sequence it corresponds to, taken
// atomically under the writer gate (no flush can land between the two
// reads). It backs the pusher's full-sync fallback.
func (s *Server) ExportReplicated() ([]core.WeightChange, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Engine.Serving().ExportWeights(s.boundary), uint64(s.stream.Flushes)
}

// ReportReplica publishes the follower's sync progress into /v1/stats.
func (s *Server) ReportReplica(st api.ReplicaStats) {
	s.replicaStats.Store(&st)
}
