package main

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
)

// TestTenantCrashRecoveryEndToEnd SIGKILLs a multi-tenant daemon
// mid-load and requires every tenant to recover independently from its
// own WAL namespace: per-tenant counters and rankings byte-identical,
// no cross-tenant bleed, and the registry summary intact.
func TestTenantCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	addr := freeAddr(t)
	base := "http://" + addr
	common := []string{
		"-tenants", "alpha,beta,gamma",
		"-data-dir", dataDir, "-docs", "40", "-batch", "2",
		"-fsync", "always", "-checkpoint-every", "0",
	}
	tenants := []string{"alpha", "beta", "gamma"}

	cmd := startDaemon(t, bin, addr, common...)
	// Distinct per-tenant streams: tenant i casts i+3 votes (batch=2, so
	// alpha lands 1 flush + 1 pending, beta 2 + 0, gamma 2 + 1), while
	// the default tenant sees nothing.
	for i, id := range tenants {
		for k := 0; k < i+3; k++ {
			driveVote(t, base+"/v1/t/"+id, i+k)
		}
	}
	sigs := make(map[string]string)
	for _, id := range tenants {
		sigs[id] = rankingSignature(t, base+"/v1/t/"+id)
	}
	defSig := rankingSignature(t, base)

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no checkpoints, no WAL close
		t.Fatal(err)
	}
	cmd.Wait()

	addr2 := freeAddr(t)
	base2 := "http://" + addr2
	startDaemon(t, bin, addr2, common...)

	for i, id := range tenants {
		st := getStatsBody(t, base2+"/v1/t/"+id)
		wantVotes := i + 3
		wantFlushes := wantVotes / 2
		wantPending := wantVotes % 2
		if st.VotesAccepted != wantVotes || st.Flushes != wantFlushes || st.VotesPending != wantPending {
			t.Fatalf("tenant %s post-recovery stats = %+v (want %d votes, %d flushes, %d pending)",
				id, st, wantVotes, wantFlushes, wantPending)
		}
		if st.Durability == nil || st.Durability.Failed {
			t.Fatalf("tenant %s durability section = %+v", id, st.Durability)
		}
		if got := rankingSignature(t, base2+"/v1/t/"+id); got != sigs[id] {
			t.Fatalf("tenant %s post-recovery ranking differs:\n pre  %s\n post %s", id, sigs[id], got)
		}
	}
	// The default tenant saw no votes and recovers the pristine ranking.
	if st := getStatsBody(t, base2); st.VotesAccepted != 0 {
		t.Fatalf("default tenant votes_accepted = %d, want 0", st.VotesAccepted)
	}
	if got := rankingSignature(t, base2); got != defSig {
		t.Fatalf("default tenant ranking changed across crash:\n pre  %s\n post %s", defSig, got)
	}

	// The un-scoped stats carry the registry summary with every tenant
	// serving.
	resp, err := http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var full struct {
		Tenants *struct {
			Count   int `json:"count"`
			Failed  int `json:"failed"`
			Tenants []struct {
				ID    string `json:"id"`
				State string `json:"state"`
			} `json:"tenants"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if full.Tenants == nil || full.Tenants.Count != 4 || full.Tenants.Failed != 0 {
		t.Fatalf("registry summary after recovery = %+v, want 4 serving / 0 failed", full.Tenants)
	}

	// Recovered tenants keep accepting votes independently.
	driveVote(t, base2+"/v1/t/alpha", 1)
	if st := getStatsBody(t, base2+"/v1/t/alpha"); st.VotesAccepted != 4 {
		t.Fatalf("alpha votes after recovery = %d, want 4", st.VotesAccepted)
	}
	if st := getStatsBody(t, base2+"/v1/t/beta"); st.VotesAccepted != 4 {
		t.Fatalf("beta votes unchanged = %d, want 4", st.VotesAccepted)
	}

	// Per-tenant metric labels survive recovery.
	exp := scrapeMetrics(t, base2)
	for _, id := range tenants {
		if v := mustValue(t, exp, "kgvote_server_votes_accepted_total", map[string]string{"tenant": id}); v == 0 {
			t.Fatalf("kgvote_server_votes_accepted_total{tenant=%q} = %g, want > 0", id, v)
		}
	}
}
