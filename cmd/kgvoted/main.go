// Command kgvoted serves a Q&A system over HTTP: POST /ask ranks answers,
// POST /vote records feedback (optimizing the knowledge graph in
// batches), POST /explain decomposes a score into its graph walks, and
// GET /stats reports counters. See internal/server for the API shapes.
//
// Usage:
//
//	kgvoted -addr :8080 -corpus corpus.json -batch 10
//	kgvoted -addr :8080 -docs 200            # synthetic corpus
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/server"
	"kgvote/internal/synth"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		corpusPath = flag.String("corpus", "", "corpus JSON path (default: synthesize)")
		docs       = flag.Int("docs", 200, "synthetic corpus size when -corpus is not given")
		batch      = flag.Int("batch", 10, "votes per optimization batch")
		k          = flag.Int("k", 10, "answer-list length")
		l          = flag.Int("l", 4, "path-length pruning threshold")
		seed       = flag.Int64("seed", 1, "random seed for the synthetic corpus")
		solverName = flag.String("solver", "multi", "batch solver: multi, sm, or single")
		statePath  = flag.String("state", "", "persist the optimized system here: loaded at boot if present, saved on SIGINT/SIGTERM")
	)
	flag.Parse()
	if err := serve(*addr, *corpusPath, *docs, *batch, *k, *l, *seed, *solverName, *statePath); err != nil {
		fmt.Fprintln(os.Stderr, "kgvoted:", err)
		os.Exit(1)
	}
}

func serve(addr, corpusPath string, docs, batch, k, l int, seed int64, solverName, statePath string) error {
	var solver core.StreamSolver
	switch solverName {
	case "multi":
		solver = core.StreamMulti
	case "sm":
		solver = core.StreamSplitMerge
	case "single":
		solver = core.StreamSingle
	default:
		return fmt.Errorf("unknown solver %q (multi, sm, single)", solverName)
	}
	opts := core.Options{K: k, L: l}

	sys, err := loadOrBuild(corpusPath, statePath, docs, seed, opts)
	if err != nil {
		return err
	}
	srv, err := server.New(sys, batch, solver)
	if err != nil {
		return err
	}
	log.Printf("kgvoted: %d documents, %d entities, %d edges; batch=%d solver=%s; listening on %s",
		len(sys.Corpus.Docs), sys.Aug.Entities, sys.Aug.NumEdges(), batch, solverName, addr)

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("kgvoted: shutting down")
	_ = httpSrv.Close()
	if statePath != "" {
		if err := saveState(sys, statePath); err != nil {
			return err
		}
		log.Printf("kgvoted: state saved to %s", statePath)
	}
	return nil
}

// loadOrBuild restores a persisted system when statePath exists, otherwise
// builds a fresh one from the corpus (file or synthetic).
func loadOrBuild(corpusPath, statePath string, docs int, seed int64, opts core.Options) (*qa.System, error) {
	if statePath != "" {
		f, err := os.Open(statePath)
		switch {
		case err == nil:
			defer f.Close()
			sys, err := qa.Load(f, opts)
			if err != nil {
				return nil, fmt.Errorf("loading state %s: %w", statePath, err)
			}
			log.Printf("kgvoted: resumed from %s", statePath)
			return sys, nil
		case !errors.Is(err, os.ErrNotExist):
			return nil, err
		}
	}
	var (
		corpus *qa.Corpus
		err    error
	)
	if corpusPath != "" {
		f, err := os.Open(corpusPath)
		if err != nil {
			return nil, err
		}
		corpus, err = qa.ReadCorpus(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else {
		corpus, err = synth.GenerateCorpus(synth.CorpusConfig{Docs: docs, Seed: seed})
		if err != nil {
			return nil, err
		}
	}
	return qa.Build(corpus, opts)
}

// saveState writes the system atomically (temp file + rename).
func saveState(sys *qa.System, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sys.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
