// Command kgvoted serves a Q&A system over HTTP: POST /v1/ask ranks
// answers, POST /v1/vote records feedback (optimizing the knowledge
// graph in batches), POST /v1/explain decomposes a score into its graph
// walks, and GET /v1/stats reports counters. Unversioned paths still
// work as deprecated aliases. See API.md for the wire contract.
//
// With -data-dir the daemon is durable: every accepted vote is written to
// a write-ahead log before it is applied, full-state checkpoints are taken
// periodically and on shutdown, and a restart after a crash — including
// SIGKILL — reconstructs the exact pre-crash state (rankings, counters,
// and votes still pending in the current batch). See DESIGN.md §9.
//
// The write path is overload-protected (DESIGN.md §12): -queue-cap
// bounds the pending-vote queue, -vote-rate/-vote-burst rate-limit each
// client, and excess load is shed with 429 + Retry-After. SIGINT/SIGTERM
// triggers a graceful drain: admission stops (writes answer
// 503/draining, reads keep serving), in-flight requests finish, queued
// votes are flushed, and — when durable — a final checkpoint lands
// before exit, so no admitted vote is ever lost.
//
// Usage:
//
//	kgvoted -addr :8080 -corpus corpus.json -batch 10
//	kgvoted -addr :8080 -docs 200            # synthetic corpus
//	kgvoted -addr :8080 -data-dir /var/lib/kgvote -fsync always
//	kgvoted -addr :8080 -queue-cap 1024 -vote-rate 50 -async-flush
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/pathidx"
	"kgvote/internal/qa"
	"kgvote/internal/server"
	"kgvote/internal/shard"
	"kgvote/internal/solvefarm"
	"kgvote/internal/synth"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
	"kgvote/internal/wal"
)

type config struct {
	addr       string
	corpusPath string
	docs       int
	batch      int
	k, l       int
	seed       int64
	solverName string
	statePath  string
	workers    int
	solvers    string

	scorer      string
	pushRMax    float64
	pushTracked int

	dataDir         string
	fsync           string
	syncEvery       time.Duration
	checkpointEvery int

	queueCap     int
	voteRate     float64
	voteBurst    float64
	reputation   bool
	asyncFlush   bool
	flushTimeout time.Duration
	drainTimeout time.Duration

	shardMap    string
	shardIndex  int
	shardInit   int
	peers       string
	replica     bool
	follow      string
	followEvery time.Duration

	tenants        string
	tenantQueueCap int
	tenantVoteRate float64

	metrics bool
	slowMS  int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.corpusPath, "corpus", "", "corpus JSON path (default: synthesize)")
	flag.IntVar(&cfg.docs, "docs", 200, "synthetic corpus size when -corpus is not given")
	flag.IntVar(&cfg.batch, "batch", 10, "votes per optimization batch")
	flag.IntVar(&cfg.k, "k", 10, "answer-list length")
	flag.IntVar(&cfg.l, "l", 4, "path-length pruning threshold")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed for the synthetic corpus")
	flag.StringVar(&cfg.solverName, "solver", "multi", "batch solver: multi, sm, or single")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "flush-pipeline concurrency: enumeration, judgment, clustering, and per-cluster solves fan out over this many goroutines")
	flag.StringVar(&cfg.solvers, "solvers", "", "comma-separated kgsolved addresses (host:port,...): dispatch split-and-merge cluster solves to the farm, with retry, hedged stragglers, and in-process fallback")
	flag.StringVar(&cfg.scorer, "scorer", "enum", "serving scorer backend: enum (exact bounded-walk sweeps) or push (incremental local push, repaired in O(delta) per flush; DESIGN.md §16)")
	flag.Float64Var(&cfg.pushRMax, "push-rmax", 0, "push-backend residual-drop threshold (0 = default 1e-6, negative = exact); smaller tightens the certified bound and costs more pushes")
	flag.IntVar(&cfg.pushTracked, "push-tracked", 0, "push-backend cap on incrementally maintained seed sets (0 = default 256)")
	flag.StringVar(&cfg.statePath, "state", "", "persist the optimized system here: loaded at boot if present, saved on SIGINT/SIGTERM (no WAL; see -data-dir)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durability directory: WAL + checkpoints + crash recovery")
	flag.StringVar(&cfg.fsync, "fsync", "always", "WAL fsync policy with -data-dir: always, interval, or never")
	flag.DurationVar(&cfg.syncEvery, "sync-every", 50*time.Millisecond, "fsync staleness bound under -fsync interval")
	flag.IntVar(&cfg.checkpointEvery, "checkpoint-every", 16, "checkpoint after every N optimization flushes (0 disables periodic checkpoints)")
	flag.IntVar(&cfg.queueCap, "queue-cap", 4096, "pending-vote queue bound; excess /v1/vote load is shed with 429 (0 disables admission control)")
	flag.Float64Var(&cfg.voteRate, "vote-rate", 0, "per-client votes/sec admitted in steady state (0 disables per-client rate limiting)")
	flag.Float64Var(&cfg.voteBurst, "vote-burst", 0, "per-client vote burst size (0 = max(1, -vote-rate))")
	flag.BoolVar(&cfg.reputation, "reputation", false, "track per-voter reputation and exclude quarantined voters' votes from batch solves (DESIGN.md §15)")
	flag.BoolVar(&cfg.asyncFlush, "async-flush", false, "solve batches on a background scheduler instead of inline on the filling vote")
	flag.DurationVar(&cfg.flushTimeout, "flush-timeout", 10*time.Second, "deadline per background flush solve; on expiry the best-so-far weights apply (0 = unbounded)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown budget: in-flight requests, the final flush, and the shutdown checkpoint must finish within this")
	flag.StringVar(&cfg.shardMap, "shard-map", "", "shard map file: run as one shard of a partitioned cluster (DESIGN.md §14)")
	flag.IntVar(&cfg.shardIndex, "shard-index", 0, "this process's shard index within -shard-map")
	flag.IntVar(&cfg.shardInit, "shard-init", 0, "create -shard-map for N shards if the file does not exist (seeded by -seed; all processes must agree)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated peer shard writer base URLs: replicate each flush's weight set to them")
	flag.BoolVar(&cfg.replica, "replica", false, "run as a read-only snapshot replica of -follow (requires -shard-map; excludes -data-dir, -state, -peers)")
	flag.StringVar(&cfg.follow, "follow", "", "writer base URL this replica polls for snapshots")
	flag.DurationVar(&cfg.followEvery, "follow-every", 500*time.Millisecond, "replica snapshot poll interval")
	flag.StringVar(&cfg.tenants, "tenants", "", "comma-separated tenant ids: host each as an independent stack behind /v1/t/{tenant} (DESIGN.md §17); a default tenant serving the un-prefixed /v1 routes always exists")
	flag.IntVar(&cfg.tenantQueueCap, "tenant-queue-cap", 0, "per-tenant pending-vote queue bound with -tenants (0 = inherit -queue-cap)")
	flag.Float64Var(&cfg.tenantVoteRate, "tenant-vote-rate", 0, "per-tenant per-client votes/sec with -tenants (0 = inherit -vote-rate)")
	flag.BoolVar(&cfg.metrics, "metrics", true, "serve Prometheus metrics at GET /metrics and profiling at /debug/pprof/")
	flag.IntVar(&cfg.slowMS, "slow-ms", 1000, "log requests slower than this many milliseconds, with their stage trace (0 disables)")
	flag.Parse()
	run := serve
	if cfg.tenants != "" || cfg.tenantQueueCap > 0 || cfg.tenantVoteRate > 0 {
		run = serveTenants
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "kgvoted:", err)
		os.Exit(1)
	}
}

func serve(cfg config) error {
	var solver core.StreamSolver
	switch cfg.solverName {
	case "multi":
		solver = core.StreamMulti
	case "sm":
		solver = core.StreamSplitMerge
	case "single":
		solver = core.StreamSingle
	default:
		return fmt.Errorf("unknown solver %q (multi, sm, single)", cfg.solverName)
	}
	backend, err := pathidx.ParseBackend(cfg.scorer)
	if err != nil {
		return err
	}
	opts := core.Options{
		K: cfg.k, L: cfg.l, Workers: cfg.workers,
		Scorer: backend, PushRMax: cfg.pushRMax, PushMaxTracked: cfg.pushTracked,
	}
	if cfg.dataDir != "" && cfg.statePath != "" {
		return errors.New("-data-dir and -state are mutually exclusive; the data directory owns persistence")
	}
	if cfg.replica {
		if cfg.follow == "" {
			return errors.New("-replica requires -follow (the writer to poll snapshots from)")
		}
		if cfg.shardMap == "" {
			return errors.New("-replica requires -shard-map (the replica serves its writer's document slice)")
		}
		if cfg.dataDir != "" || cfg.statePath != "" || cfg.peers != "" {
			return errors.New("-replica state is ephemeral (re-synced from the writer); it excludes -data-dir, -state, and -peers")
		}
	}
	if cfg.peers != "" && cfg.shardMap == "" {
		return errors.New("-peers requires -shard-map")
	}

	var smap *shard.Map
	if cfg.shardMap != "" {
		var err error
		if cfg.shardInit > 0 {
			if _, serr := os.Stat(cfg.shardMap); errors.Is(serr, os.ErrNotExist) {
				m, merr := shard.NewMap(cfg.shardInit, uint64(cfg.seed))
				if merr != nil {
					return merr
				}
				// Concurrent creators race benignly: the file content is
				// deterministic in (N, seed) and the write is atomic.
				if werr := m.WriteFile(cfg.shardMap); werr != nil {
					return werr
				}
				log.Printf("kgvoted: wrote shard map %s (%d shards, seed %d)", cfg.shardMap, cfg.shardInit, cfg.seed)
			}
		}
		smap, err = shard.LoadFile(cfg.shardMap)
		if err != nil {
			return err
		}
		if cfg.shardIndex < 0 || cfg.shardIndex >= smap.Shards {
			return fmt.Errorf("-shard-index %d out of range for %d shards", cfg.shardIndex, smap.Shards)
		}
	}

	var reg *telemetry.Registry
	if cfg.metrics {
		reg = telemetry.NewRegistry()
	}

	var (
		mgr *durable.Manager
		rec *durable.Recovered
		sys *qa.System
	)
	if cfg.dataDir != "" {
		policy, err := wal.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		mgr, err = durable.Open(durable.Options{
			Dir:       cfg.dataDir,
			Fsync:     policy,
			SyncEvery: cfg.syncEvery,
			Engine:    opts,
			Metrics:   durable.NewMetrics(reg),
		})
		if err != nil {
			return err
		}
		defer mgr.Close()
		rec, err = mgr.Recover()
		if err != nil {
			return err
		}
	}
	if rec != nil {
		sys = rec.Sys
		log.Printf("kgvoted: recovered from %s: checkpoint at wal seq %d, %d records replayed, %d pending votes",
			cfg.dataDir, rec.CheckpointSeq, rec.Records, len(rec.Pending))
	} else {
		sys, err = loadOrBuild(cfg.corpusPath, cfg.statePath, cfg.docs, cfg.seed, opts)
		if err != nil {
			return err
		}
		if mgr != nil {
			if err := mgr.Bootstrap(sys); err != nil {
				return err
			}
			log.Printf("kgvoted: initialized data directory %s", cfg.dataDir)
		}
	}
	if cfg.solvers != "" {
		addrs := splitAddrs(cfg.solvers)
		disp, err := solvefarm.New(solvefarm.Options{Workers: addrs, Reg: reg})
		if err != nil {
			return err
		}
		defer disp.Close()
		sys.Engine.SetClusterSolver(disp)
		log.Printf("kgvoted: dispatching cluster solves to %d workers (%s)", len(addrs), strings.Join(addrs, ", "))
	}
	// The pusher needs the server's export hook and the server needs the
	// pusher's publish hook; break the cycle with a late-bound srv.
	var srv *server.Server
	var shardCfg *server.ShardConfig
	if smap != nil {
		shardCfg = &server.ShardConfig{Map: smap, Index: cfg.shardIndex}
		if !cfg.replica && cfg.peers != "" {
			peers := splitAddrs(cfg.peers)
			for i, p := range peers {
				peers[i] = normalizeURL(p)
			}
			pusher, err := shard.NewPusher(shard.PusherOptions{
				Source: cfg.shardIndex,
				Peers:  peers,
				Export: func() ([]core.WeightChange, uint64) { return srv.ExportReplicated() },
			})
			if err != nil {
				return err
			}
			defer pusher.Close()
			shardCfg.OnFlush = pusher.Publish
			log.Printf("kgvoted: shard %d/%d replicating flushes to %s", cfg.shardIndex, smap.Shards, strings.Join(peers, ", "))
		}
	}
	var repCfg *vote.ReputationConfig
	if cfg.reputation {
		repCfg = &vote.ReputationConfig{}
	}
	srv, err = server.NewWithOptions(sys, server.Options{
		BatchSize:       cfg.batch,
		Solver:          solver,
		Durable:         mgr,
		Recovered:       rec,
		CheckpointEvery: cfg.checkpointEvery,
		Admission: admit.Config{
			Capacity:       cfg.queueCap,
			PerClientRate:  cfg.voteRate,
			PerClientBurst: cfg.voteBurst,
		},
		Reputation:    repCfg,
		AsyncFlush:    cfg.asyncFlush,
		FlushTimeout:  cfg.flushTimeout,
		Telemetry:     reg,
		SlowThreshold: time.Duration(cfg.slowMS) * time.Millisecond,
		Pprof:         cfg.metrics,
		ReadOnly:      cfg.replica,
		Shard:         shardCfg,
	})
	if err != nil {
		return err
	}
	if cfg.replica {
		follower, err := shard.NewFollower(shard.FollowerOptions{
			Writer: normalizeURL(cfg.follow),
			Every:  cfg.followEvery,
			Apply:  srv.ImportSnapshot,
			OnSync: srv.ReportReplica,
		})
		if err != nil {
			return err
		}
		defer follower.Close()
		log.Printf("kgvoted: replica of %s (shard %d/%d), polling every %s", cfg.follow, cfg.shardIndex, smap.Shards, cfg.followEvery)
	}
	log.Printf("kgvoted: %d documents, %d entities, %d edges; batch=%d solver=%s; listening on %s",
		len(sys.Corpus.Docs), sys.Aug.Entities, sys.Aug.NumEdges(), cfg.batch, cfg.solverName, cfg.addr)

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain (DESIGN.md §12): stop admitting writes first so
	// in-flight requests and the listener shutdown race nothing, then let
	// the HTTP server finish what it already accepted, then flush the
	// queued remainder and checkpoint. Reads keep serving throughout the
	// listener's grace period.
	log.Printf("kgvoted: draining (writes rejected, %s budget)", cfg.drainTimeout)
	srv.BeginDrain()
	dctx := context.Background()
	if cfg.drainTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, cfg.drainTimeout)
		defer cancel()
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("kgvoted: listener shutdown: %v (closing)", err)
		_ = httpSrv.Close()
	}
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if mgr != nil {
		log.Printf("kgvoted: drained and checkpointed to %s", cfg.dataDir)
	}
	if cfg.statePath != "" {
		if err := saveState(sys, cfg.statePath); err != nil {
			return err
		}
		log.Printf("kgvoted: state saved to %s", cfg.statePath)
	}
	return nil
}

// normalizeURL defaults a scheme-less address to http://.
func normalizeURL(s string) string {
	if !strings.Contains(s, "://") {
		return "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// splitAddrs parses the -solvers list, tolerating spaces and empty items.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// loadOrBuild restores a persisted system when statePath exists, otherwise
// builds a fresh one from the corpus (file or synthetic).
func loadOrBuild(corpusPath, statePath string, docs int, seed int64, opts core.Options) (*qa.System, error) {
	if statePath != "" {
		f, err := os.Open(statePath)
		switch {
		case err == nil:
			defer f.Close()
			sys, err := qa.Load(f, opts)
			if err != nil {
				return nil, fmt.Errorf("loading state %s: %w", statePath, err)
			}
			log.Printf("kgvoted: resumed from %s", statePath)
			return sys, nil
		case !errors.Is(err, os.ErrNotExist):
			return nil, err
		}
	}
	var (
		corpus *qa.Corpus
		err    error
	)
	if corpusPath != "" {
		f, err := os.Open(corpusPath)
		if err != nil {
			return nil, err
		}
		corpus, err = qa.ReadCorpus(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else {
		corpus, err = synth.GenerateCorpus(synth.CorpusConfig{Docs: docs, Seed: seed})
		if err != nil {
			return nil, err
		}
	}
	return qa.Build(corpus, opts)
}

// saveState writes the system atomically (temp file + rename).
func saveState(sys *qa.System, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sys.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
