package main

import (
	"os"
	"path/filepath"
	"testing"

	"kgvote/internal/core"
)

func TestLoadOrBuildAndSaveState(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state.json")
	opts := core.Options{K: 5, L: 3}

	// No state file yet: builds a synthetic corpus.
	sys, err := loadOrBuild("", state, 20, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Corpus.Docs) != 20 {
		t.Fatalf("docs = %d", len(sys.Corpus.Docs))
	}
	if err := saveState(sys, state); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state not written: %v", err)
	}
	if _, err := os.Stat(state + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind")
	}

	// Second boot resumes from the state.
	resumed, err := loadOrBuild("", state, 99, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Corpus.Docs) != 20 {
		t.Errorf("resume ignored state: docs = %d", len(resumed.Corpus.Docs))
	}

	// A corrupt state fails loudly rather than silently rebuilding.
	if err := os.WriteFile(state, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadOrBuild("", state, 20, 1, opts); err == nil {
		t.Errorf("corrupt state should fail")
	}
}

func TestLoadOrBuildCorpusFile(t *testing.T) {
	dir := t.TempDir()
	corpusPath := filepath.Join(dir, "c.json")
	if err := os.WriteFile(corpusPath, []byte(`{"Docs":[{"ID":1,"Entities":{"a":1,"b":1}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sys, err := loadOrBuild(corpusPath, "", 0, 0, core.Options{K: 2, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Corpus.Docs) != 1 {
		t.Errorf("docs = %d", len(sys.Corpus.Docs))
	}
	if _, err := loadOrBuild(filepath.Join(dir, "missing.json"), "", 0, 0, core.Options{}); err == nil {
		t.Errorf("missing corpus should fail")
	}
}
