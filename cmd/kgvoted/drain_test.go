package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// tryVote drives one ask→vote round without failing the test: during a
// drain the daemon legitimately answers 503 (or drops the connection as
// the listener closes), and the flood test only needs to know whether
// this particular vote was ADMITTED (200) or not.
func tryVote(base string) (int, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	b, _ := json.Marshal(map[string]any{"entities": map[string]int{"t00e00": 2, "t00e01": 1}})
	resp, err := client.Post(base+"/v1/ask", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	var ask askBody
	derr := json.NewDecoder(resp.Body).Decode(&ask)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("ask = %d", resp.StatusCode)
	}
	if derr != nil || len(ask.Results) == 0 {
		return 0, fmt.Errorf("ask decode: %v", derr)
	}
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	b, _ = json.Marshal(map[string]any{"query": ask.Query, "ranked": ranked, "best_doc": ranked[0]})
	resp, err = client.Post(base+"/v1/vote", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestDrainFlushesPendingAndCheckpoints: SIGTERM with a partial batch
// queued must flush that remainder and checkpoint before exit, so the
// restarted daemon recovers every vote from the checkpoint alone — no
// WAL tail to replay, nothing pending.
func TestDrainFlushesPendingAndCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	addr := freeAddr(t)
	base := "http://" + addr
	// batch=100: nothing flushes while serving; the drain owns the solve.
	common := []string{"-data-dir", dataDir, "-docs", "40", "-batch", "100",
		"-fsync", "always", "-checkpoint-every", "0", "-queue-cap", "64"}

	cmd := startDaemon(t, bin, addr, common...)
	for i := 0; i < 5; i++ {
		driveVote(t, base, i)
	}
	before := getStatsBody(t, base)
	if before.VotesAccepted != 5 || before.VotesPending != 5 || before.Flushes != 0 {
		t.Fatalf("pre-drain stats = %+v", before)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM: %v", err)
	}

	addr2 := freeAddr(t)
	startDaemon(t, bin, addr2, common...)
	after := getStatsBody(t, "http://"+addr2)
	if after.VotesAccepted != 5 || after.Flushes != 1 || after.VotesPending != 0 {
		t.Fatalf("post-restart stats = %+v (want 5 votes, 1 flush from the drain, 0 pending)", after)
	}
	// The only record past the drain checkpoint's barrier is its own
	// RecCheckpoint marker; any more means votes leaked past the drain.
	if after.Durability == nil || after.Durability.ReplayedRecords > 1 {
		t.Fatalf("drain checkpoint missing: restart replayed WAL records: %+v", after.Durability)
	}
}

// TestDrainLosesNoAdmittedVotes SIGTERMs the daemon while concurrent
// clients are still voting, then restarts it and requires the recovered
// vote count to equal the number of 200s the clients observed: every
// admitted vote survives the drain, every shed or refused vote was told
// so. This is the overload-safe serving contract end to end.
func TestDrainLosesNoAdmittedVotes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	addr := freeAddr(t)
	base := "http://" + addr
	common := []string{"-data-dir", dataDir, "-docs", "40", "-batch", "3",
		"-fsync", "always", "-checkpoint-every", "0", "-queue-cap", "32"}

	cmd := startDaemon(t, bin, addr, common...)
	for i := 0; i < 4; i++ { // a few guaranteed-admitted votes before the storm
		driveVote(t, base, i)
	}
	var (
		admitted atomic.Int64
		wg       sync.WaitGroup
	)
	admitted.Store(4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				code, err := tryVote(base)
				if err == nil && code == http.StatusOK {
					admitted.Add(1)
				}
				if code == http.StatusServiceUnavailable {
					return // draining: no further vote will be admitted
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond) // let some of the storm land mid-flight
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGTERM under load: %v", err)
	}

	addr2 := freeAddr(t)
	startDaemon(t, bin, addr2, common...)
	after := getStatsBody(t, "http://"+addr2)
	want := int(admitted.Load())
	if after.VotesAccepted != want {
		t.Fatalf("recovered votes_accepted = %d, want %d (every 200 must survive the drain)",
			after.VotesAccepted, want)
	}
	if after.VotesPending != 0 {
		t.Fatalf("restart found %d pending votes; the drain should have flushed them", after.VotesPending)
	}
	if after.Durability != nil && after.Durability.Failed {
		t.Fatalf("durability poisoned after drain: %+v", after.Durability)
	}
}
