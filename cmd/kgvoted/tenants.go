package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"kgvote/api"
	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/pathidx"
	"kgvote/internal/qa"
	"kgvote/internal/server"
	"kgvote/internal/solvefarm"
	"kgvote/internal/telemetry"
	"kgvote/internal/tenant"
	"kgvote/internal/vote"
	"kgvote/internal/wal"
)

// serveTenants runs the multi-tenant daemon (DESIGN.md §17): one
// registry of independent server stacks, each with its own engine,
// vote stream, admission quota, and — with -data-dir — its own WAL
// namespace under <data-dir>/tenants/<id>, recovered independently at
// boot. Requests route by path: /v1/t/{tenant}/... to that tenant,
// /v1/admin/tenants to the admin API, and everything else to the
// default tenant exactly as a single-tenant daemon would serve it.
func serveTenants(cfg config) error {
	if cfg.replica || cfg.shardMap != "" || cfg.peers != "" {
		return errors.New("-tenants excludes -replica, -shard-map, and -peers (shard a tenant by running it as its own cluster)")
	}
	if cfg.statePath != "" {
		return errors.New("-tenants excludes -state; use -data-dir for per-tenant durability")
	}
	for _, id := range splitAddrs(cfg.tenants) {
		if !tenant.ValidID(id) || id == "admin" {
			return fmt.Errorf("-tenants: invalid tenant id %q (want ^[a-z0-9][a-z0-9_-]{0,63}$, not \"admin\")", id)
		}
	}
	var solver core.StreamSolver
	switch cfg.solverName {
	case "multi":
		solver = core.StreamMulti
	case "sm":
		solver = core.StreamSplitMerge
	case "single":
		solver = core.StreamSingle
	default:
		return fmt.Errorf("unknown solver %q (multi, sm, single)", cfg.solverName)
	}
	backend, err := pathidx.ParseBackend(cfg.scorer)
	if err != nil {
		return err
	}
	opts := core.Options{
		K: cfg.k, L: cfg.l, Workers: cfg.workers,
		Scorer: backend, PushRMax: cfg.pushRMax, PushMaxTracked: cfg.pushTracked,
	}
	var reg *telemetry.Registry
	if cfg.metrics {
		reg = telemetry.NewRegistry()
	}
	var disp *solvefarm.Dispatcher
	if cfg.solvers != "" {
		addrs := splitAddrs(cfg.solvers)
		if disp, err = solvefarm.New(solvefarm.Options{Workers: addrs, Reg: reg}); err != nil {
			return err
		}
		defer disp.Close()
	}
	queueCap := cfg.tenantQueueCap
	if queueCap <= 0 {
		queueCap = cfg.queueCap
	}
	voteRate := cfg.tenantVoteRate
	if voteRate <= 0 {
		voteRate = cfg.voteRate
	}

	// The factory builds one tenant's full stack. Its telemetry is a
	// tenant-labeled view of the shared registry, so /metrics carries
	// every tenant's series as kgvote_*{tenant="..."}. treg is late-bound:
	// the default tenant's stats hook reads the registry summary.
	var treg *tenant.Registry
	factory := func(id, dir string) (*server.Server, func() error, error) {
		scoped := reg.WithLabels(telemetry.Labels{"tenant": id})
		var (
			mgr *durable.Manager
			rec *durable.Recovered
			sys *qa.System
		)
		if dir != "" {
			policy, err := wal.ParseSyncPolicy(cfg.fsync)
			if err != nil {
				return nil, nil, err
			}
			mgr, err = durable.Open(durable.Options{
				Dir:       dir,
				Fsync:     policy,
				SyncEvery: cfg.syncEvery,
				Engine:    opts,
				Metrics:   durable.NewMetrics(scoped),
			})
			if err != nil {
				return nil, nil, err
			}
			if rec, err = mgr.Recover(); err != nil {
				mgr.Close()
				return nil, nil, err
			}
		}
		if rec != nil {
			sys = rec.Sys
			log.Printf("kgvoted: tenant %q recovered from %s: checkpoint at wal seq %d, %d records replayed, %d pending votes",
				id, dir, rec.CheckpointSeq, rec.Records, len(rec.Pending))
		} else {
			var err error
			if sys, err = loadOrBuild(cfg.corpusPath, "", cfg.docs, cfg.seed, opts); err != nil {
				if mgr != nil {
					mgr.Close()
				}
				return nil, nil, err
			}
			if mgr != nil {
				if err := mgr.Bootstrap(sys); err != nil {
					mgr.Close()
					return nil, nil, err
				}
			}
		}
		if disp != nil {
			sys.Engine.SetClusterSolver(disp)
		}
		var repCfg *vote.ReputationConfig
		if cfg.reputation {
			repCfg = &vote.ReputationConfig{}
		}
		sopts := server.Options{
			BatchSize:       cfg.batch,
			Solver:          solver,
			Durable:         mgr,
			Recovered:       rec,
			CheckpointEvery: cfg.checkpointEvery,
			Admission: admit.Config{
				Capacity:       queueCap,
				PerClientRate:  voteRate,
				PerClientBurst: cfg.voteBurst,
			},
			Reputation:    repCfg,
			AsyncFlush:    cfg.asyncFlush,
			FlushTimeout:  cfg.flushTimeout,
			Telemetry:     scoped,
			SlowThreshold: time.Duration(cfg.slowMS) * time.Millisecond,
			Tenant:        id,
		}
		if id == server.DefaultTenant {
			// Only the default tenant mounts /metrics and pprof (they are
			// process-wide) and embeds the registry summary in its stats.
			sopts.Pprof = cfg.metrics
			sopts.Tenants = func() *api.TenantsStats {
				s := treg.Summary()
				return &s
			}
		}
		srv, err := server.NewWithOptions(sys, sopts)
		if err != nil {
			if mgr != nil {
				mgr.Close()
			}
			return nil, nil, err
		}
		closer := func() error {
			if mgr != nil {
				return mgr.Close()
			}
			return nil
		}
		return srv, closer, nil
	}

	treg = tenant.New(tenant.Options{Factory: factory, DataDir: cfg.dataDir, Telemetry: reg})
	if err := treg.Open(splitAddrs(cfg.tenants)); err != nil {
		return err
	}
	ids := treg.IDs()
	log.Printf("kgvoted: serving %d tenants (%s) on %s", len(ids), strings.Join(ids, ", "), cfg.addr)
	for _, t := range treg.Summary().Tenants {
		if t.State == "failed" {
			log.Printf("kgvoted: tenant %q quarantined: %s", t.ID, t.Error)
		}
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: treg.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("kgvoted: draining %d tenants (writes rejected, %s budget)", len(treg.IDs()), cfg.drainTimeout)
	treg.BeginDrain()
	dctx := context.Background()
	if cfg.drainTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, cfg.drainTimeout)
		defer cancel()
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("kgvoted: listener shutdown: %v (closing)", err)
		_ = httpSrv.Close()
	}
	if err := treg.Close(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if cfg.dataDir != "" {
		log.Printf("kgvoted: drained and checkpointed to %s", cfg.dataDir)
	}
	return nil
}
