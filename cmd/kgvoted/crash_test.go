package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildDaemon compiles the kgvoted binary once into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kgvoted")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches kgvoted and waits until /healthz answers.
func startDaemon(t *testing.T, bin, addr string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	var logBuf bytes.Buffer
	cmd.Stdout = &logBuf
	cmd.Stderr = &logBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon never became healthy; log:\n%s", logBuf.String())
	return nil
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// askBody mirrors server.AskResponse closely enough for the test.
type askBody struct {
	Query   int `json:"query"`
	Results []struct {
		Doc   int     `json:"doc"`
		Score float64 `json:"score"`
	} `json:"results"`
}

func driveVote(t *testing.T, base string, best int) {
	t.Helper()
	var ask askBody
	if code := postJSON(t, base+"/ask", map[string]any{"entities": map[string]int{"t00e00": 2, "t00e01": 1}}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	if code := postJSON(t, base+"/vote", map[string]any{
		"query": ask.Query, "ranked": ranked, "best_doc": ranked[best%len(ranked)],
	}, nil); code != http.StatusOK {
		t.Fatalf("vote = %d", code)
	}
}

// rankingSignature captures a ranking byte-exactly (float bits in hex).
func rankingSignature(t *testing.T, base string) string {
	t.Helper()
	var ask askBody
	if code := postJSON(t, base+"/ask", map[string]any{"entities": map[string]int{"t00e00": 2, "t00e01": 1}}, &ask); code != http.StatusOK {
		t.Fatalf("ask = %d", code)
	}
	var sb strings.Builder
	for _, r := range ask.Results {
		fmt.Fprintf(&sb, "%d:%x ", r.Doc, r.Score)
	}
	return sb.String()
}

type statsBody struct {
	VotesAccepted int `json:"votes_accepted"`
	VotesPending  int `json:"votes_pending"`
	Flushes       int `json:"flushes"`
	Durability    *struct {
		ReplayedRecords int  `json:"replayed_records"`
		Failed          bool `json:"failed"`
	} `json:"durability"`
}

func getStatsBody(t *testing.T, base string) statsBody {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCrashRecoveryEndToEnd drives the real daemon over HTTP, SIGKILLs it
// with votes in flight (no graceful shutdown of any kind), restarts it on
// the same data directory, and requires byte-identical rankings and
// counters — the durability subsystem's headline guarantee.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	addr := freeAddr(t)
	base := "http://" + addr
	common := []string{"-data-dir", dataDir, "-docs", "40", "-batch", "2", "-fsync", "always", "-checkpoint-every", "0"}

	cmd := startDaemon(t, bin, addr, common...)
	for i := 0; i < 5; i++ { // batch=2: two flushes land, one vote pending
		driveVote(t, base, i)
	}
	before := getStatsBody(t, base)
	if before.VotesAccepted != 5 || before.Flushes != 2 || before.VotesPending != 1 {
		t.Fatalf("pre-crash stats = %+v", before)
	}
	sig := rankingSignature(t, base)

	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no checkpoint, no WAL close
		t.Fatal(err)
	}
	cmd.Wait()

	addr2 := freeAddr(t)
	base2 := "http://" + addr2
	startDaemon(t, bin, addr2, common...)
	after := getStatsBody(t, base2)
	if after.VotesAccepted != 5 || after.Flushes != 2 || after.VotesPending != 1 {
		t.Fatalf("post-recovery stats = %+v (want 5 votes, 2 flushes, 1 pending)", after)
	}
	if after.Durability == nil || after.Durability.ReplayedRecords == 0 {
		t.Fatalf("recovery did not replay the WAL tail: %+v", after.Durability)
	}
	if got := rankingSignature(t, base2); got != sig {
		t.Fatalf("post-recovery ranking differs:\n pre  %s\n post %s", sig, got)
	}
	// Telemetry must come back sane: the scrape passes the exposition
	// checker, the recovery gauge reports the replayed WAL tail, and the
	// counter mirrors carry the recovered totals rather than zeros.
	exp := scrapeMetrics(t, base2)
	if v := mustValue(t, exp, "kgvote_durable_replayed_records", nil); v == 0 {
		t.Fatalf("kgvote_durable_replayed_records = %g, want > 0 after crash recovery", v)
	}
	if v := mustValue(t, exp, "kgvote_server_votes_accepted_total", nil); v != 5 {
		t.Fatalf("recovered votes_accepted metric = %g, want 5", v)
	}
	if v := mustValue(t, exp, "kgvote_server_flushes_total", nil); v != 2 {
		t.Fatalf("recovered flushes metric = %g, want 2", v)
	}
	if v := mustValue(t, exp, "kgvote_core_epoch", nil); v == 0 {
		t.Fatalf("kgvote_core_epoch = %g, want > 0 after recovery rebuilt the snapshot", v)
	}
	// The recovered daemon keeps accepting votes, and the metric follows.
	driveVote(t, base2, 1)
	final := getStatsBody(t, base2)
	if final.VotesAccepted != 6 {
		t.Fatalf("vote after recovery not counted: %+v", final)
	}
	if v := mustValue(t, scrapeMetrics(t, base2), "kgvote_server_votes_accepted_total", nil); v != 6 {
		t.Fatalf("votes_accepted metric after post-recovery vote = %g, want 6", v)
	}
}

// TestGracefulShutdownCheckpoints verifies SIGTERM takes a shutdown
// checkpoint: the restart must recover without replaying any vote records
// (everything is inside the checkpoint).
func TestGracefulShutdownCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	addr := freeAddr(t)
	base := "http://" + addr
	common := []string{"-data-dir", dataDir, "-docs", "40", "-batch", "2", "-fsync", "always"}

	cmd := startDaemon(t, bin, addr, common...)
	for i := 0; i < 4; i++ {
		driveVote(t, base, i)
	}
	sig := rankingSignature(t, base)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited uncleanly after SIGINT: %v", err)
	}

	addr2 := freeAddr(t)
	base2 := "http://" + addr2
	startDaemon(t, bin, addr2, common...)
	after := getStatsBody(t, base2)
	if after.VotesAccepted != 4 || after.Flushes != 2 {
		t.Fatalf("post-restart stats = %+v (want 4 votes, 2 flushes)", after)
	}
	if got := rankingSignature(t, base2); got != sig {
		t.Fatalf("post-restart ranking differs:\n pre  %s\n post %s", sig, got)
	}
}
