package main

import (
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"kgvote/internal/telemetry"
)

// scrapeMetrics GETs /metrics and runs the scrape through the package's
// own strict checker (parse + histogram invariants), returning the
// parsed exposition. This is also the body of `make metrics-smoke`.
func scrapeMetrics(t *testing.T, base string) *telemetry.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("content type = %q, want %q", ct, telemetry.ContentType)
	}
	exp, err := telemetry.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape failed the exposition parser: %v", err)
	}
	if err := exp.CheckHistograms(); err != nil {
		t.Fatalf("scrape failed histogram invariants: %v", err)
	}
	return exp
}

// mustValue reads an exact series from a scrape or fails.
func mustValue(t *testing.T, exp *telemetry.Exposition, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := exp.Value(name, labels)
	if !ok {
		t.Fatalf("series %s%v missing from scrape", name, labels)
	}
	return v
}

// TestMetricsEndToEnd boots the real binary with durability on, drives
// /ask + /vote + /flush traffic, and scrapes /metrics twice: the first
// scrape must carry valid series from every instrumented subsystem, and
// the second must show every counter monotonically advanced by exactly
// the traffic driven in between.
func TestMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	addr := freeAddr(t)
	base := "http://" + addr
	startDaemon(t, bin, addr,
		"-data-dir", dataDir, "-docs", "40", "-batch", "2", "-fsync", "always", "-slow-ms", "0")

	for i := 0; i < 3; i++ { // batch=2: one flush lands, one vote pending
		driveVote(t, base, i)
	}
	if code := postJSON(t, base+"/flush", map[string]any{}, nil); code != http.StatusOK {
		t.Fatalf("flush = %d", code)
	}

	first := scrapeMetrics(t, base)

	// The acceptance bar: ≥ 12 distinct families spanning all layers.
	fams := first.Families()
	if len(fams) < 12 {
		t.Fatalf("only %d metric families: %v", len(fams), fams)
	}
	for _, prefix := range []string{"kgvote_server_", "kgvote_qa_", "kgvote_core_", "kgvote_wal_", "kgvote_durable_"} {
		found := false
		for _, f := range fams {
			if strings.HasPrefix(f, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no %s* family in scrape; families: %v", prefix, fams)
		}
	}

	askRoute := map[string]string{"route": "/ask"}
	voteRoute := map[string]string{"route": "/vote"}
	if v := mustValue(t, first, "kgvote_server_requests_total", askRoute); v != 3 {
		t.Fatalf("ask requests = %g, want 3", v)
	}
	if v := mustValue(t, first, "kgvote_server_requests_total", voteRoute); v != 3 {
		t.Fatalf("vote requests = %g, want 3", v)
	}
	if v := mustValue(t, first, "kgvote_server_votes_accepted_total", nil); v != 3 {
		t.Fatalf("votes accepted = %g, want 3", v)
	}
	if v := mustValue(t, first, "kgvote_core_flushes_total", nil); v != 2 {
		t.Fatalf("flushes = %g, want 2 (one batch, one manual)", v)
	}
	if v := mustValue(t, first, "kgvote_wal_records_total", nil); v <= 0 {
		t.Fatalf("wal records = %g, want > 0 with durability on", v)
	}
	if v := mustValue(t, first, "kgvote_wal_fsync_seconds_count", nil); v <= 0 {
		t.Fatalf("wal fsyncs = %g, want > 0 under -fsync always", v)
	}
	// Latency histograms must have observed real time: a request takes
	// nonzero wall clock, so sum > 0 whenever count > 0.
	if c := mustValue(t, first, "kgvote_server_request_seconds_count", askRoute); c != 3 {
		t.Fatalf("ask latency count = %g, want 3", c)
	}
	if s := mustValue(t, first, "kgvote_server_request_seconds_sum", askRoute); s <= 0 {
		t.Fatalf("ask latency sum = %g, want > 0", s)
	}

	// More traffic, then the second scrape: counters move up by exactly
	// the delta driven.
	for i := 0; i < 2; i++ {
		driveVote(t, base, i)
	}
	second := scrapeMetrics(t, base)

	monotonic := []struct {
		name   string
		labels map[string]string
		delta  float64
	}{
		{"kgvote_server_requests_total", askRoute, 2},
		{"kgvote_server_requests_total", voteRoute, 2},
		{"kgvote_server_votes_accepted_total", nil, 2},
		{"kgvote_server_request_seconds_count", askRoute, 2},
		{"kgvote_qa_ask_seconds_count", nil, 2},
	}
	for _, m := range monotonic {
		v1 := mustValue(t, first, m.name, m.labels)
		v2 := mustValue(t, second, m.name, m.labels)
		if v2 < v1 {
			t.Fatalf("%s%v went backwards: %g -> %g", m.name, m.labels, v1, v2)
		}
		if v2 != v1+m.delta {
			t.Fatalf("%s%v = %g -> %g, want +%g", m.name, m.labels, v1, v2, m.delta)
		}
	}
	w1 := mustValue(t, first, "kgvote_wal_records_total", nil)
	w2 := mustValue(t, second, "kgvote_wal_records_total", nil)
	if w2 <= w1 {
		t.Fatalf("wal records did not advance: %g -> %g", w1, w2)
	}
	s1 := mustValue(t, first, "kgvote_server_request_seconds_sum", askRoute)
	s2 := mustValue(t, second, "kgvote_server_request_seconds_sum", askRoute)
	if s2 <= s1 {
		t.Fatalf("latency sum did not grow with count: %g -> %g", s1, s2)
	}
}

// TestMetricsDisabled: -metrics=false must 404 the scrape endpoint but
// leave the API fully functional.
func TestMetricsDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	addr := freeAddr(t)
	base := "http://" + addr
	startDaemon(t, bin, addr, "-docs", "40", "-metrics=false")

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with -metrics=false = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ with -metrics=false = %d, want 404", resp.StatusCode)
	}
	driveVote(t, base, 0) // API still works
}
