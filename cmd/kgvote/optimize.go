package main

import (
	"flag"
	"fmt"
	"os"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

// cmdOptimize applies a JSON vote log to a TSV graph with the chosen
// solver and writes the re-weighted graph.
func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "input graph TSV path")
	votesPath := fs.String("votes", "", "vote log JSON path")
	solver := fs.String("solver", "multi", "solver: single, multi, or sm")
	out := fs.String("out", "", "output TSV path (default stdout)")
	k := fs.Int("k", 20, "answer-list length")
	l := fs.Int("l", 5, "path-length pruning threshold")
	workers := fs.Int("workers", 1, "parallel cluster solves for sm")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *votesPath == "" {
		return fmt.Errorf("optimize: -graph and -votes are required")
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	g, err := graph.ReadTSV(gf)
	if err != nil {
		return err
	}
	vf, err := os.Open(*votesPath)
	if err != nil {
		return err
	}
	defer vf.Close()
	votes, err := vote.ReadJSON(vf)
	if err != nil {
		return err
	}

	eng, err := core.New(g, core.Options{K: *k, L: *l, Workers: *workers})
	if err != nil {
		return err
	}
	var rep *core.Report
	switch *solver {
	case "single":
		rep, err = eng.SolveSingle(votes)
	case "multi":
		rep, err = eng.SolveMulti(votes)
	case "sm":
		rep, err = eng.SolveSplitMerge(votes)
	default:
		return fmt.Errorf("optimize: unknown solver %q (single, multi, sm)", *solver)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d votes, %d encoded, %d discarded, %d/%d constraints satisfied, %d edges changed, %d clusters\n",
		*solver, rep.Votes, rep.Encoded, rep.Discarded, rep.Satisfied, rep.Constraints, rep.ChangedEdges, rep.Clusters)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.WriteTSV(w)
}
