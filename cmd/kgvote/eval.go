package main

import (
	"flag"
	"fmt"
	"os"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/metrics"
	"kgvote/internal/qa"
	"kgvote/internal/synth"
	"kgvote/internal/vote"
)

// cmdEval measures Q&A accuracy (H@k, MRR, R_avg) of a corpus — optionally
// after optimizing with simulated votes — so deployments can judge whether
// vote feedback would help before wiring it in.
func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	corpusPath := fs.String("corpus", "", "corpus JSON path (required)")
	questionsPath := fs.String("questions", "", "questions JSON path (default: synthesize)")
	solver := fs.String("solver", "", "optimize first with: single, multi, or sm (default: no optimization)")
	votesN := fs.Int("votes", 50, "simulated training votes when -solver is set")
	k := fs.Int("k", 10, "answer-list length")
	l := fs.Int("l", 4, "path-length pruning threshold")
	corruption := fs.Float64("corrupt", 0, "inject log-normal weight noise before evaluating")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpusPath == "" {
		return fmt.Errorf("eval: -corpus is required")
	}
	cf, err := os.Open(*corpusPath)
	if err != nil {
		return err
	}
	defer cf.Close()
	corpus, err := qa.ReadCorpus(cf)
	if err != nil {
		return err
	}

	var questions []qa.Question
	if *questionsPath != "" {
		qf, err := os.Open(*questionsPath)
		if err != nil {
			return err
		}
		defer qf.Close()
		questions, err = qa.ReadQuestions(qf)
		if err != nil {
			return err
		}
	} else {
		questions, err = synth.GenerateQuestions(corpus, synth.QuestionConfig{N: 50, Noise: 0.4, Seed: *seed + 1})
		if err != nil {
			return err
		}
	}

	sys, err := qa.Build(corpus, core.Options{K: *k, L: *l})
	if err != nil {
		return err
	}
	if *corruption > 0 {
		synth.CorruptWeights(sys.Aug.Graph, *corruption, *seed+2)
	}

	if *solver != "" {
		train, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: *votesN, Noise: 0.4, Seed: *seed + 3})
		if err != nil {
			return err
		}
		recs, err := synth.SimulateVotes(sys, train, synth.VoterConfig{Seed: *seed + 4})
		if err != nil {
			return err
		}
		votes := synth.Votes(recs)
		var rep *core.Report
		switch *solver {
		case "single":
			rep, err = sys.Engine.SolveSingle(votes)
		case "multi":
			rep, err = sys.Engine.SolveMulti(votes)
		case "sm":
			rep, err = sys.Engine.SolveSplitMerge(votes)
		default:
			return fmt.Errorf("eval: unknown solver %q", *solver)
		}
		if err != nil {
			return err
		}
		fmt.Printf("optimized with %s: %d votes (%d discarded), %d/%d constraints satisfied\n",
			*solver, rep.Votes, rep.Discarded, rep.Satisfied, rep.Constraints)
	}

	ranks := make([]int, 0, len(questions))
	skipped := 0
	for _, q := range questions {
		if q.BestDoc < 0 {
			skipped++
			continue
		}
		qn, err := sys.AttachQuestion(q)
		if err != nil {
			skipped++
			continue
		}
		r, err := sys.RankOfDoc(qn, q.BestDoc)
		if err != nil {
			return err
		}
		ranks = append(ranks, r)
	}
	if len(ranks) == 0 {
		return fmt.Errorf("eval: no evaluable questions (need BestDoc ground truth)")
	}
	fmt.Printf("questions: %d evaluated, %d skipped\n", len(ranks), skipped)
	fmt.Printf("R_avg: %.2f\n", metrics.MeanRank(ranks))
	fmt.Printf("MRR:   %.3f\n", metrics.MRR(ranks))
	for _, kk := range []int{1, 3, 5, 10} {
		fmt.Printf("H@%-2d:  %.2f\n", kk, metrics.HitsAtK(ranks, kk))
	}
	return nil
}

// cmdGenVotes synthesizes a vote workload over a TSV graph and writes the
// votes as JSON, for feeding into `kgvote optimize`.
func cmdGenVotes(args []string) error {
	fs := flag.NewFlagSet("gen-votes", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "graph TSV path (required)")
	nq := fs.Int("queries", 50, "number of queries")
	na := fs.Int("answers", 100, "number of answers")
	k := fs.Int("k", 10, "answer-list length")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output JSON path (default stdout)")
	outGraph := fs.String("out-graph", "", "write the augmented graph TSV here (required: vote node IDs refer to it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("gen-votes: -graph is required")
	}
	if *outGraph == "" {
		return fmt.Errorf("gen-votes: -out-graph is required (votes reference query/answer nodes added to the graph)")
	}
	gf, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	g, err := graph.ReadTSV(gf)
	if err != nil {
		return err
	}
	w, err := synth.GenerateWorkload(g, synth.WorkloadConfig{NQ: *nq, NA: *na, K: *k, Nnodes: g.NumNodes(), Seed: *seed})
	if err != nil {
		return err
	}
	og, err := os.Create(*outGraph)
	if err != nil {
		return err
	}
	defer og.Close()
	if err := w.Aug.WriteTSV(og); err != nil {
		return err
	}
	wOut := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		wOut = f
	}
	if err := vote.WriteJSON(wOut, w.Votes); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d votes over %d queries and %d answers\n", len(w.Votes), *nq, *na)
	return nil
}
