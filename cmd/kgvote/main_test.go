package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kgvote/internal/graph"
	"kgvote/internal/vote"
)

func TestRunUsageAndErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Errorf("no args should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Errorf("unknown subcommand should fail")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help failed: %v", err)
	}
}

func TestGenGraphAndStats(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.tsv")
	if err := run([]string{"gen-graph", "-profile", "random", "-scale", "0.02", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadTSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatalf("empty generated graph")
	}
	if err := run([]string{"stats", "-graph", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stats"}); err == nil {
		t.Errorf("stats without -graph should fail")
	}
	if err := run([]string{"stats", "-graph", filepath.Join(dir, "missing.tsv")}); err == nil {
		t.Errorf("missing graph file should fail")
	}
	if err := run([]string{"gen-graph", "-profile", "nope"}); err == nil {
		t.Errorf("unknown profile should fail")
	}
}

func TestGenCorpus(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c.json")
	if err := run([]string{"gen-corpus", "-docs", "20", "-topics", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Entities") {
		t.Errorf("corpus JSON missing entities")
	}
	if err := run([]string{"gen-corpus", "-topics", "-1"}); err == nil {
		t.Errorf("bad corpus config should fail")
	}
}

func TestDemo(t *testing.T) {
	if err := run([]string{"demo", "-questions", "6", "-seed", "2", "-docs", "40", "-l", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Build a small graph where a vote should flip a ranking.
	g := graph.New(0)
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	y := g.AddNode("y")
	g.MustSetEdge(q, a, 0.6)
	g.MustSetEdge(q, b, 0.4)
	g.MustSetEdge(a, x, 1)
	g.MustSetEdge(b, y, 1)
	gPath := filepath.Join(dir, "g.tsv")
	gf, err := os.Create(gPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteTSV(gf); err != nil {
		t.Fatal(err)
	}
	gf.Close()

	v, err := vote.FromRanking(q, []graph.NodeID{x, y}, y)
	if err != nil {
		t.Fatal(err)
	}
	vPath := filepath.Join(dir, "v.json")
	vf, err := os.Create(vPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := vote.WriteJSON(vf, []vote.Vote{v}); err != nil {
		t.Fatal(err)
	}
	vf.Close()

	outPath := filepath.Join(dir, "opt.tsv")
	for _, solver := range []string{"multi", "single", "sm"} {
		if err := run([]string{"optimize", "-graph", gPath, "-votes", vPath, "-solver", solver, "-k", "2", "-l", "3", "-out", outPath}); err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		of, err := os.Open(outPath)
		if err != nil {
			t.Fatal(err)
		}
		og, err := graph.ReadTSV(of)
		of.Close()
		if err != nil {
			t.Fatal(err)
		}
		if og.NumEdges() != g.NumEdges() {
			t.Errorf("%s: edge count changed: %d vs %d", solver, og.NumEdges(), g.NumEdges())
		}
		// The voted answer's path must have gained relative to the rival's.
		origRatio := g.Weight(q, b) * g.Weight(b, y) / (g.Weight(q, a) * g.Weight(a, x))
		newRatio := og.Weight(q, b) * og.Weight(b, y) / (og.Weight(q, a) * og.Weight(a, x))
		if newRatio <= origRatio {
			t.Errorf("%s: vote had no effect: ratio %v -> %v", solver, origRatio, newRatio)
		}
	}

	// Error paths.
	if err := run([]string{"optimize"}); err == nil {
		t.Errorf("missing flags should fail")
	}
	if err := run([]string{"optimize", "-graph", gPath, "-votes", vPath, "-solver", "bogus"}); err == nil {
		t.Errorf("unknown solver should fail")
	}
	if err := run([]string{"optimize", "-graph", "missing", "-votes", vPath}); err == nil {
		t.Errorf("missing graph should fail")
	}
	if err := run([]string{"optimize", "-graph", gPath, "-votes", "missing"}); err == nil {
		t.Errorf("missing votes should fail")
	}
}

func TestEvalAndGenVotes(t *testing.T) {
	dir := t.TempDir()
	corpusPath := filepath.Join(dir, "c.json")
	if err := run([]string{"gen-corpus", "-docs", "30", "-topics", "3", "-entities", "8", "-out", corpusPath}); err != nil {
		t.Fatal(err)
	}
	// Plain evaluation.
	if err := run([]string{"eval", "-corpus", corpusPath, "-k", "5", "-l", "3"}); err != nil {
		t.Fatal(err)
	}
	// Evaluation after multi-vote optimization on a corrupted graph.
	if err := run([]string{"eval", "-corpus", corpusPath, "-k", "5", "-l", "3", "-corrupt", "0.5", "-solver", "multi", "-votes", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"eval"}); err == nil {
		t.Errorf("eval without corpus should fail")
	}
	if err := run([]string{"eval", "-corpus", corpusPath, "-solver", "bogus"}); err == nil {
		t.Errorf("unknown solver should fail")
	}
	if err := run([]string{"eval", "-corpus", filepath.Join(dir, "missing.json")}); err == nil {
		t.Errorf("missing corpus should fail")
	}

	// gen-votes over a generated graph, then optimize with the log.
	gPath := filepath.Join(dir, "g.tsv")
	if err := run([]string{"gen-graph", "-profile", "random", "-scale", "0.01", "-out", gPath}); err != nil {
		t.Fatal(err)
	}
	augPath := filepath.Join(dir, "aug.tsv")
	votesPath := filepath.Join(dir, "v.json")
	if err := run([]string{"gen-votes", "-graph", gPath, "-queries", "6", "-answers", "12", "-k", "4", "-out", votesPath, "-out-graph", augPath}); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "opt.tsv")
	if err := run([]string{"optimize", "-graph", augPath, "-votes", votesPath, "-solver", "multi", "-k", "4", "-l", "3", "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"gen-votes"}); err == nil {
		t.Errorf("gen-votes without flags should fail")
	}
	if err := run([]string{"gen-votes", "-graph", gPath}); err == nil {
		t.Errorf("gen-votes without out-graph should fail")
	}
}

func TestExplainCommand(t *testing.T) {
	dir := t.TempDir()
	g := graph.New(0)
	g.AddNodes(3)
	g.MustSetEdge(0, 1, 0.5)
	g.MustSetEdge(1, 2, 0.8)
	p := filepath.Join(dir, "g.tsv")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteTSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run([]string{"explain", "-graph", p, "-from", "0", "-to", "2", "-l", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"explain"}); err == nil {
		t.Errorf("missing flags should fail")
	}
	if err := run([]string{"explain", "-graph", p, "-from", "0", "-to", "99"}); err == nil {
		t.Errorf("bad target should fail")
	}
}

func TestStatsWithWalkProfile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.tsv")
	if err := run([]string{"gen-graph", "-profile", "random", "-scale", "0.01", "-seed", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stats", "-graph", out, "-source", "0", "-max-l", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stats", "-graph", out, "-source", "999999"}); err == nil {
		t.Errorf("bad source should fail")
	}
}
