// Command kgvote is the CLI front end of the library: it generates
// synthetic graphs and corpora, inspects graphs, runs an interactive-style
// demo of the vote-optimize loop, and applies vote logs to a graph.
//
// Usage:
//
//	kgvote gen-graph -profile twitter -scale 0.01 -seed 1 -out graph.tsv
//	kgvote gen-corpus -docs 200 -out corpus.json
//	kgvote stats -graph graph.tsv
//	kgvote demo [-seed 1]
//	kgvote optimize -graph graph.tsv -votes votes.json -solver multi -out optimized.tsv
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kgvote:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage(os.Stderr)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "gen-graph":
		return cmdGenGraph(args[1:])
	case "gen-corpus":
		return cmdGenCorpus(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "demo":
		return cmdDemo(args[1:])
	case "optimize":
		return cmdOptimize(args[1:])
	case "eval":
		return cmdEval(args[1:])
	case "gen-votes":
		return cmdGenVotes(args[1:])
	case "explain":
		return cmdExplain(args[1:])
	case "help", "-h", "--help":
		usage(os.Stdout)
		return nil
	default:
		usage(os.Stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `kgvote — optimize knowledge graphs through voting-based user feedback

Subcommands:
  gen-graph   generate a synthetic graph (profiles: twitter, digg, gnutella, taobao, random)
  gen-corpus  generate a synthetic Q&A corpus as JSON
  stats       print graph statistics
  demo        run the end-to-end ask → vote → optimize loop on a synthetic corpus
  optimize    apply a JSON vote log to a TSV graph and write the optimized graph
  gen-votes   synthesize a vote workload over a TSV graph
  eval        measure Q&A accuracy of a corpus, optionally after vote optimization
  explain     decompose a similarity score into its contributing graph walks
  help        show this message
`)
}
