package main

import (
	"flag"
	"fmt"

	"kgvote/internal/core"
	"kgvote/internal/qa"
	"kgvote/internal/synth"
	"kgvote/internal/vote"
)

// cmdDemo runs the paper's Fig. 1 loop end to end on a synthetic
// customer-service corpus: ask questions, collect votes against ground
// truth, optimize the graph with the multi-vote solution, and show the
// before/after rankings.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	questions := fs.Int("questions", 30, "number of voted questions")
	docs := fs.Int("docs", 200, "corpus size")
	l := fs.Int("l", 5, "path-length pruning threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}

	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: *docs, Seed: *seed})
	if err != nil {
		return err
	}
	sys, err := qa.Build(corpus, core.Options{K: 10, L: *l})
	if err != nil {
		return err
	}
	fmt.Printf("knowledge graph: %d entities, %d edges, %d answer documents\n",
		sys.Aug.Entities, sys.Aug.NumEdges(), len(sys.Answers()))

	qs, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: *questions, Noise: 0.4, Seed: *seed + 1})
	if err != nil {
		return err
	}
	recs, err := synth.SimulateVotes(sys, qs, synth.VoterConfig{Seed: *seed + 2})
	if err != nil {
		return err
	}
	neg, pos := synth.SplitByKind(recs)
	fmt.Printf("collected %d votes (%d negative, %d positive)\n", len(recs), len(neg), len(pos))

	before := make([]int, len(recs))
	for i, r := range recs {
		before[i] = r.TrueRank
	}
	rep, err := sys.Engine.SolveMulti(synth.Votes(recs))
	if err != nil {
		return err
	}
	fmt.Printf("multi-vote solve: %d votes encoded, %d discarded by the judgment algorithm, %d/%d constraints satisfied, %d edges changed\n",
		rep.Encoded, rep.Discarded, rep.Satisfied, rep.Constraints, rep.ChangedEdges)

	improved, degraded := 0, 0
	var omega int
	for i, r := range recs {
		best, err := sys.AnswerOf(r.Question.BestDoc)
		if err != nil {
			return err
		}
		after, err := sys.Engine.RankOf(r.Query, best, sys.Answers())
		if err != nil {
			return err
		}
		omega += before[i] - after
		switch {
		case after < before[i]:
			improved++
		case after > before[i]:
			degraded++
		}
		if i < 5 && r.Vote.Kind == vote.Negative {
			fmt.Printf("  question %d: true best doc #%d moved rank %d -> %d\n",
				r.Question.ID, r.Question.BestDoc, before[i], after)
		}
	}
	fmt.Printf("omega = %d over %d votes (%d improved, %d degraded)\n", omega, len(recs), improved, degraded)
	return nil
}
