package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/synth"
)

// profileByName resolves a profile flag value.
func profileByName(name string) (synth.Profile, error) {
	switch strings.ToLower(name) {
	case "twitter":
		return synth.Twitter, nil
	case "digg":
		return synth.Digg, nil
	case "gnutella":
		return synth.Gnutella, nil
	case "taobao":
		return synth.Taobao, nil
	case "random":
		return synth.Profile{Name: "Random", Nodes: 5000, Edges: 20000}, nil
	default:
		return synth.Profile{}, fmt.Errorf("unknown profile %q (twitter, digg, gnutella, taobao, random)", name)
	}
}

func cmdGenGraph(args []string) error {
	fs := flag.NewFlagSet("gen-graph", flag.ContinueOnError)
	profile := fs.String("profile", "random", "graph profile")
	scale := fs.Float64("scale", 1.0, "scale factor in (0,1]")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output TSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := profileByName(*profile)
	if err != nil {
		return err
	}
	g, err := p.Scaled(*scale).Generate(*seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteTSV(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d nodes, %d edges\n", p.Name, g.NumNodes(), g.NumEdges())
	return nil
}

func cmdGenCorpus(args []string) error {
	fs := flag.NewFlagSet("gen-corpus", flag.ContinueOnError)
	topics := fs.Int("topics", 8, "number of topics")
	entities := fs.Int("entities", 24, "entities per topic")
	docs := fs.Int("docs", 200, "number of documents")
	perDoc := fs.Int("per-doc", 6, "entities per document")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output JSON path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{
		Topics: *topics, EntitiesPer: *entities, Docs: *docs, EntitiesPerDoc: *perDoc, Seed: *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(corpus); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated corpus: %d documents, %d entities\n", len(corpus.Docs), len(corpus.Vocabulary()))
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	path := fs.String("graph", "", "graph TSV path")
	source := fs.Int("source", -1, "profile walk statistics from this node (optional)")
	maxL := fs.Int("max-l", 8, "walk-statistics length limit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("stats: -graph is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graph.ReadTSV(f)
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return err
	}
	dangling := 0
	var sumW float64
	g.Edges(func(_, _ graph.NodeID, w float64) { sumW += w })
	for i := 0; i < g.NumNodes(); i++ {
		if g.OutDegree(graph.NodeID(i)) == 0 {
			dangling++
		}
	}
	fmt.Printf("nodes:        %d\n", g.NumNodes())
	fmt.Printf("edges:        %d\n", g.NumEdges())
	fmt.Printf("avg degree:   %.2f\n", g.AvgOutDegree())
	fmt.Printf("dangling:     %d\n", dangling)
	if g.NumEdges() > 0 {
		fmt.Printf("mean weight:  %.4f\n", sumW/float64(g.NumEdges()))
	}
	if *source >= 0 {
		stats, err := pathidx.WalkStats(g, graph.NodeID(*source), pathidx.Options{L: *maxL})
		if err != nil {
			return err
		}
		fmt.Printf("\nwalk statistics from node %d:\n", *source)
		fmt.Printf("%3s  %9s  %10s  %12s\n", "L", "frontier", "mass", "contribution")
		for _, st := range stats {
			fmt.Printf("%3d  %9d  %10.6f  %12.8f\n", st.Length, st.Frontier, st.Mass, st.Contribution)
		}
		l, err := pathidx.SuggestL(g, graph.NodeID(*source), *maxL, 0.05, 0.15)
		if err != nil {
			return err
		}
		fmt.Printf("suggested L (5%% criterion): %d\n", l)
	}
	return nil
}
