package main

import (
	"flag"
	"fmt"
	"os"

	"kgvote/internal/core"
	"kgvote/internal/graph"
)

// cmdExplain decomposes a similarity score on a TSV graph into its
// contributing walks.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	graphPath := fs.String("graph", "", "graph TSV path (required)")
	from := fs.Int("from", -1, "source node ID (required)")
	to := fs.Int("to", -1, "target node ID (required)")
	l := fs.Int("l", 5, "path-length pruning threshold")
	top := fs.Int("top", 5, "walks to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *from < 0 || *to < 0 {
		return fmt.Errorf("explain: -graph, -from, and -to are required")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := graph.ReadTSV(f)
	if err != nil {
		return err
	}
	eng, err := core.New(g, core.Options{L: *l})
	if err != nil {
		return err
	}
	ex, err := eng.Explain(graph.NodeID(*from), graph.NodeID(*to), *top)
	if err != nil {
		return err
	}
	fmt.Print(ex.Format(g))
	return nil
}
