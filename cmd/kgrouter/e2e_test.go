package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"kgvote/api"
	"kgvote/internal/shard"
)

// buildBinary compiles one command of this module into dir.
func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	out, err := execCommand("go", "build", "-o", bin, pkg)
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startProc launches a binary and waits for healthPath to answer 200.
func startProc(t *testing.T, bin, addr, healthPath string, args ...string) *managedProc {
	t.Helper()
	p, err := launch(bin, append([]string{"-addr", addr}, args...))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.stop)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + healthPath)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if p.exited() {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy; log:\n%s", bin, p.log())
	return nil
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func askRouter(t *testing.T, base string) (api.AskResponse, *http.Response) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/ask", map[string]any{
		"entities": map[string]int{"t00e00": 2, "t00e01": 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask = %d: %s", resp.StatusCode, body)
	}
	var ask api.AskResponse
	if err := json.Unmarshal(body, &ask); err != nil {
		t.Fatalf("decode ask: %v", err)
	}
	return ask, resp
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestClusterEndToEnd stands up the real binaries — three kgvoted shard
// writers with peer replication, one snapshot replica following shard 0,
// and a kgrouter in front — then drives asks and votes through the
// router, SIGKILLs one shard writer mid-load, and requires the router to
// degrade to partial answers while the survivors keep serving. The
// killed shard is restarted on its data directory and must recover its
// votes from the WAL and rejoin the fan-out (X-KG-Shards-Answered back
// to "3/3").
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binaries")
	}
	binDir := t.TempDir()
	voted := buildBinary(t, binDir, "kgvoted", "kgvote/cmd/kgvoted")
	router := buildBinary(t, binDir, "kgrouter", "kgvote/cmd/kgrouter")

	tmp := t.TempDir()
	mapPath := filepath.Join(tmp, "cluster.map")
	const shards = 3

	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = freeAddr(t)
	}
	peersOf := func(i int) string {
		var s string
		for j, a := range addrs {
			if j == i {
				continue
			}
			if s != "" {
				s += ","
			}
			s += a
		}
		return s
	}
	shardArgs := func(i int) []string {
		return []string{
			"-docs", "48", "-seed", "7", "-batch", "1", "-k", "48",
			"-fsync", "always",
			"-data-dir", filepath.Join(tmp, fmt.Sprintf("shard%d", i)),
			"-shard-map", mapPath, "-shard-index", fmt.Sprint(i),
			"-shard-init", fmt.Sprint(shards),
			"-peers", peersOf(i),
		}
	}

	procs := make([]*managedProc, shards)
	// Start shard 0 first so the map file exists before the others race
	// to load it.
	procs[0] = startProc(t, voted, addrs[0], "/healthz", shardArgs(0)...)
	for i := 1; i < shards; i++ {
		procs[i] = startProc(t, voted, addrs[i], "/healthz", shardArgs(i)...)
	}

	smap, err := shard.LoadFile(mapPath)
	if err != nil {
		t.Fatalf("load shard map: %v", err)
	}

	replicaAddr := freeAddr(t)
	startProc(t, voted, replicaAddr, "/healthz",
		"-docs", "48", "-seed", "7", "-k", "48",
		"-shard-map", mapPath, "-shard-index", "0",
		"-replica", "-follow", addrs[0], "-follow-every", "100ms")

	routerAddr := freeAddr(t)
	base := "http://" + routerAddr
	startProc(t, router, routerAddr, "/v1/healthz",
		"-map", mapPath,
		"-shards", addrs[0]+","+addrs[1]+","+addrs[2],
		"-replicas", "0="+replicaAddr,
		"-k", "48", "-probe-every", "200ms", "-hedge-after", "50ms")

	// Healthy cluster: asks merge all three shards.
	ask, resp := askRouter(t, base)
	if ask.Partial || ask.ShardsAnswered != shards || ask.ShardsTotal != shards {
		t.Fatalf("healthy ask degraded: partial=%v %d/%d", ask.Partial, ask.ShardsAnswered, ask.ShardsTotal)
	}
	if got := resp.Header.Get("X-KG-Shards-Answered"); got != "3/3" {
		t.Fatalf("X-KG-Shards-Answered = %q, want 3/3", got)
	}
	if len(ask.Results) != 48 {
		t.Fatalf("merged ask returned %d docs, want all 48", len(ask.Results))
	}

	// Vote one owned document per shard through the router, so every
	// writer flushes at least once and replication traffic flows.
	ranked := make([]int, len(ask.Results))
	for i, r := range ask.Results {
		ranked[i] = r.Doc
	}
	votesPerShard := make([]int, shards)
	for target := 0; target < shards; target++ {
		best := -1
		for _, d := range ranked {
			if smap.Owner(d) == target && d != ranked[0] {
				best = d
				break
			}
		}
		if best < 0 {
			t.Fatalf("no ranked doc owned by shard %d", target)
		}
		a, _ := askRouter(t, base)
		r := make([]int, len(a.Results))
		for i, res := range a.Results {
			r[i] = res.Doc
		}
		vresp, vbody := postJSON(t, base+"/v1/vote", map[string]any{
			"query": a.Query, "ranked": r, "best_doc": best,
		})
		if vresp.StatusCode != http.StatusOK {
			t.Fatalf("vote for shard %d's doc %d = %d: %s", target, best, vresp.StatusCode, vbody)
		}
		var vr api.VoteResponse
		if err := json.Unmarshal(vbody, &vr); err != nil {
			t.Fatal(err)
		}
		if !vr.Flushed {
			t.Fatalf("vote for shard %d did not flush (batch=1): %s", target, vbody)
		}
		votesPerShard[target]++
	}

	// The replica follows shard 0's snapshots; wait until it has caught
	// up past the flush the vote produced.
	waitFor(t, "replica sync", 15*time.Second, func() error {
		var st api.StatsBody
		getJSON(t, "http://"+replicaAddr+"/v1/stats", &st)
		if st.Replica == nil || st.Replica.Epoch < 2 {
			return fmt.Errorf("replica stats: %+v", st.Replica)
		}
		return nil
	})

	// SIGKILL shard 1's writer: no replica covers it, so the router must
	// degrade to partial answers from the survivors.
	killedVotes := votesPerShard[1]
	procs[1].kill()
	waitFor(t, "partial degradation", 15*time.Second, func() error {
		a, resp := askRouter(t, base)
		if !a.Partial || a.ShardsAnswered != shards-1 {
			return fmt.Errorf("partial=%v %d/%d", a.Partial, a.ShardsAnswered, a.ShardsTotal)
		}
		if got := resp.Header.Get("X-KG-Shards-Answered"); got != "2/3" {
			return fmt.Errorf("header %q", got)
		}
		if len(a.Results) == 0 {
			return fmt.Errorf("no results while degraded")
		}
		return nil
	})

	// Votes for documents the survivors own still land.
	a, _ := askRouter(t, base)
	r := make([]int, len(a.Results))
	liveBest := -1
	for i, res := range a.Results {
		r[i] = res.Doc
		if liveBest < 0 && smap.Owner(res.Doc) == 2 {
			liveBest = res.Doc
		}
	}
	if liveBest < 0 {
		t.Fatal("no surviving-shard doc in degraded results")
	}
	if vresp, vbody := postJSON(t, base+"/v1/vote", map[string]any{
		"query": a.Query, "ranked": r, "best_doc": liveBest,
	}); vresp.StatusCode != http.StatusOK {
		t.Fatalf("vote while degraded = %d: %s", vresp.StatusCode, vbody)
	}

	// Restart the killed writer on the same data directory and address:
	// it must recover its votes from the WAL and rejoin the fan-out.
	procs[1] = startProc(t, voted, addrs[1], "/healthz", shardArgs(1)...)
	var st api.StatsBody
	getJSON(t, "http://"+addrs[1]+"/v1/stats", &st)
	if st.VotesAccepted != killedVotes {
		t.Fatalf("recovered shard 1 has %d votes, want %d (WAL replay)", st.VotesAccepted, killedVotes)
	}
	if st.Shard == nil || st.Shard.Index != 1 {
		t.Fatalf("recovered shard stats missing shard section: %+v", st.Shard)
	}
	waitFor(t, "shard rejoin", 15*time.Second, func() error {
		a, resp := askRouter(t, base)
		if a.Partial || a.ShardsAnswered != shards {
			return fmt.Errorf("partial=%v %d/%d", a.Partial, a.ShardsAnswered, a.ShardsTotal)
		}
		if got := resp.Header.Get("X-KG-Shards-Answered"); got != "3/3" {
			return fmt.Errorf("header %q", got)
		}
		return nil
	})
}

func waitFor(t *testing.T, what string, d time.Duration, f func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	var last error
	for time.Now().Before(deadline) {
		if last = f(); last == nil {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never happened: %v", what, last)
}
