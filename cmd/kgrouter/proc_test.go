package main

import (
	"bytes"
	"os/exec"
	"sync"
	"time"
)

// managedProc wraps a child process for the e2e test: captured combined
// log, idempotent stop, and an exit probe for the health-wait loop.
type managedProc struct {
	cmd *exec.Cmd
	buf *lockedBuffer

	mu   sync.Mutex
	done bool
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func execCommand(name string, args ...string) ([]byte, error) {
	return exec.Command(name, args...).CombinedOutput()
}

func launch(bin string, args []string) (*managedProc, error) {
	cmd := exec.Command(bin, args...)
	buf := &lockedBuffer{}
	cmd.Stdout = buf
	cmd.Stderr = buf
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &managedProc{cmd: cmd, buf: buf}
	go func() {
		cmd.Wait()
		p.mu.Lock()
		p.done = true
		p.mu.Unlock()
	}()
	return p, nil
}

func (p *managedProc) exited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

func (p *managedProc) log() string { return p.buf.String() }

// kill SIGKILLs the process and waits for it to be reaped.
func (p *managedProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	for !p.exited() {
		time.Sleep(5 * time.Millisecond)
	}
}

// stop is the cleanup hook: kill if still running.
func (p *managedProc) stop() {
	p.mu.Lock()
	done := p.done
	p.mu.Unlock()
	if !done && p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
}
