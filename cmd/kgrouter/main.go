// Command kgrouter is the stateless front door of a sharded kgvote
// cluster (DESIGN.md §14): it fans POST /v1/ask and /v1/askbatch out to
// every shard, merges the per-shard ranked lists into one global top-k,
// and routes POST /v1/vote to the shard that owns the voted document.
// Reads are hedged against each shard's snapshot replicas, endpoint
// health is probed continuously, and when a shard stays silent past the
// deadline the response degrades to Partial (X-KG-Shards-Answered
// header) instead of failing.
//
// Usage:
//
//	kgrouter -addr :8090 -map cluster.map \
//	    -shards localhost:8081,localhost:8082,localhost:8083 \
//	    -replicas 0=localhost:9081
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kgvote/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		mapPath    = flag.String("map", "", "shard map file (required; same file every shard loaded)")
		shardsFlag = flag.String("shards", "", "comma-separated shard writer addresses, in shard order (required)")
		replicas   = flag.String("replicas", "", "comma-separated index=addr read-replica endpoints, e.g. 0=host:9081,0=host:9082")
		topK       = flag.Int("k", 10, "merged answer-list length")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-shard fan-out deadline; a shard past it degrades the response to partial")
		hedgeAfter = flag.Duration("hedge-after", 75*time.Millisecond, "silence before a read is raced against the shard's next endpoint")
		probeEvery = flag.Duration("probe-every", 2*time.Second, "endpoint health-probe interval")
	)
	flag.Parse()
	if err := run(*addr, *mapPath, *shardsFlag, *replicas, *topK, *timeout, *hedgeAfter, *probeEvery); err != nil {
		fmt.Fprintln(os.Stderr, "kgrouter:", err)
		os.Exit(1)
	}
}

func run(addr, mapPath, shardsFlag, replicasFlag string, topK int, timeout, hedgeAfter, probeEvery time.Duration) error {
	if mapPath == "" {
		return fmt.Errorf("-map is required")
	}
	if shardsFlag == "" {
		return fmt.Errorf("-shards is required")
	}
	smap, err := shard.LoadFile(mapPath)
	if err != nil {
		return err
	}
	var endpoints []shard.ShardEndpoints
	for _, w := range strings.Split(shardsFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			endpoints = append(endpoints, shard.ShardEndpoints{Writer: normalizeURL(w)})
		}
	}
	if len(endpoints) != smap.Shards {
		return fmt.Errorf("-shards lists %d writers but the map has %d shards", len(endpoints), smap.Shards)
	}
	if replicasFlag != "" {
		for _, item := range strings.Split(replicasFlag, ",") {
			if item = strings.TrimSpace(item); item == "" {
				continue
			}
			idxStr, rAddr, ok := strings.Cut(item, "=")
			if !ok {
				return fmt.Errorf("-replicas item %q is not index=addr", item)
			}
			idx, err := strconv.Atoi(idxStr)
			if err != nil || idx < 0 || idx >= smap.Shards {
				return fmt.Errorf("-replicas item %q names an invalid shard index", item)
			}
			endpoints[idx].Replicas = append(endpoints[idx].Replicas, normalizeURL(rAddr))
		}
	}
	rt, err := shard.NewRouter(shard.RouterOptions{
		Map:        smap,
		Shards:     endpoints,
		TopK:       topK,
		Timeout:    timeout,
		HedgeAfter: hedgeAfter,
		ProbeEvery: probeEvery,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	nReplicas := 0
	for _, se := range endpoints {
		nReplicas += len(se.Replicas)
	}
	log.Printf("kgrouter: %d shards (+%d replicas), map %08x, k=%d; listening on %s",
		smap.Shards, nReplicas, smap.Checksum(), topK, addr)
	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("kgrouter: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return httpSrv.Shutdown(sctx)
}

// normalizeURL defaults a scheme-less address to http://.
func normalizeURL(s string) string {
	s = strings.TrimRight(s, "/")
	if !strings.Contains(s, "://") {
		return "http://" + s
	}
	return s
}
