package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/solvefarm"
	"kgvote/internal/vote"
)

// buildWorker compiles the kgsolved binary once into a temp dir.
func buildWorker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kgsolved")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startWorker launches one kgsolved process and waits for /healthz.
func startWorker(t *testing.T, bin, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker on %s never became healthy", addr)
	return nil
}

// flushWeights runs one four-region split-and-merge flush, optionally
// through cs, and returns the final edge weights.
func flushWeights(t *testing.T, cs core.ClusterSolver) map[graph.EdgeKey]float64 {
	t.Helper()
	g := graph.New(0)
	type region struct{ q, x, y graph.NodeID }
	regions := make([]region, 4)
	for i := range regions {
		q := g.AddNodes(5)
		a, b, x, y := q+1, q+2, q+3, q+4
		g.MustSetEdge(q, a, 0.6)
		g.MustSetEdge(q, b, 0.4)
		g.MustSetEdge(a, x, 1)
		g.MustSetEdge(b, y, 1)
		regions[i] = region{q: q, x: x, y: y}
	}
	// KMedoids with K=4 keeps the four disjoint regions in four separate
	// clusters (affinity propagation would merge the all-zero-similarity
	// votes into one), so the flush issues four farm jobs.
	e, err := core.New(g, core.Options{Workers: 2, Cluster: core.KMedoidsCluster, ClusterK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cs != nil {
		e.SetClusterSolver(cs)
	}
	votes := make([]vote.Vote, 0, len(regions))
	for _, r := range regions {
		v, err := e.CollectVote(r.q, []graph.NodeID{r.x, r.y}, r.y)
		if err != nil {
			t.Fatal(err)
		}
		votes = append(votes, v)
	}
	if _, err := e.SolveSplitMerge(votes); err != nil {
		t.Fatal(err)
	}
	out := make(map[graph.EdgeKey]float64)
	g.Edges(func(from, to graph.NodeID, w float64) {
		out[graph.EdgeKey{From: from, To: to}] = w
	})
	return out
}

func assertSameWeights(t *testing.T, got, want map[graph.EdgeKey]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: edge counts differ: %d vs %d", label, len(got), len(want))
	}
	for k, w := range want {
		if gw := got[k]; gw != w {
			t.Fatalf("%s: edge %v: %x != %x (not bitwise identical)", label, k, gw, w)
		}
	}
}

// TestFarmEndToEnd drives real kgsolved processes: a farm-dispatched
// flush must be byte-identical to the in-process flush, the workers must
// actually receive jobs, and SIGKILLing one worker must not change the
// outcome of subsequent flushes.
func TestFarmEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	bin := buildWorker(t)
	addr1, addr2 := freeAddr(t), freeAddr(t)
	w1 := startWorker(t, bin, addr1)
	startWorker(t, bin, addr2)

	d, err := solvefarm.New(solvefarm.Options{
		Workers:      []string{addr1, addr2},
		RetryBackoff: time.Millisecond,
		HealthEvery:  time.Hour, // keep the killed worker down for the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	local := flushWeights(t, nil)
	remote := flushWeights(t, d)
	assertSameWeights(t, remote, local, "farm flush")
	if jobs := workerJobs(t, addr1) + workerJobs(t, addr2); jobs < 4 {
		t.Errorf("workers solved %d jobs, want >= 4 (one per cluster)", jobs)
	}

	// SIGKILL the first worker — the dispatcher's least-loaded tie-break
	// targets it first, so the next flush is guaranteed to hit the corpse,
	// mark it down, and retry onto the survivor, still matching bit-for-bit.
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = w1.Process.Wait()
	afterKill := flushWeights(t, d)
	assertSameWeights(t, afterKill, local, "flush after SIGKILL")
	if n := d.HealthyWorkers(); n != 1 {
		t.Errorf("healthy workers = %d, want 1", n)
	}
}

// workerJobs scrapes one worker's jobs counter.
func workerJobs(t *testing.T, addr string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "kgvote_farm_worker_jobs_total") {
			fields := strings.Fields(line)
			if len(fields) == 2 {
				var n int
				if _, err := fmt.Sscanf(fields[1], "%d", &n); err == nil {
					return n
				}
			}
		}
	}
	return 0
}
