// Command kgsolved is a stateless SGP solve worker for the distributed
// split-and-merge farm (DESIGN.md §13). A kgvoted writer configured with
// -solvers ships each flush cluster's serialized program here as a
// CRC32C-checked binary job over POST /solve; the worker solves it and
// returns the converged solution. Workers hold no graph and no state
// between jobs, so any number can be added, killed, or restarted at will —
// the dispatcher's retry, hedging, and local fallback keep flushes
// correct through all of it.
//
// Usage:
//
//	kgsolved -addr :9090
//	kgsolved -addr :9090 -max-jobs 4 -metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"kgvote/internal/solvefarm"
	"kgvote/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", ":9090", "listen address")
		maxJobs = flag.Int("max-jobs", 0, "concurrent solves (0 = GOMAXPROCS)")
		metrics = flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics")
	)
	flag.Parse()
	if err := serve(*addr, *maxJobs, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "kgsolved:", err)
		os.Exit(1)
	}
}

func serve(addr string, maxJobs int, metrics bool) error {
	w := &solvefarm.Worker{MaxJobs: maxJobs}
	if metrics {
		w.Reg = telemetry.NewRegistry()
	}
	httpSrv := &http.Server{Addr: addr, Handler: w.Handler()}
	n := maxJobs
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	log.Printf("kgsolved: solve worker listening on %s (max %d concurrent jobs)", addr, n)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, let in-flight solves reply. A
	// dispatcher retries anything that doesn't make it.
	log.Printf("kgsolved: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		return httpSrv.Close()
	}
	return nil
}
