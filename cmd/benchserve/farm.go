package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"

	"kgvote/internal/harness"
	"kgvote/internal/solvefarm"
	"kgvote/internal/telemetry"
)

// This file is the flush benchmark's farm extension: with -farm-workers N
// the benchmark re-execs itself N times in the hidden -farm-worker mode
// (so `go run ./cmd/benchserve` works without a separately built
// kgsolved), dispatches the same flush to the spawned workers, asserts
// bitwise-identical weights, and SIGKILLs one worker mid-flush to
// exercise the retry/fallback path.

// farmWorkerMain is the hidden re-exec mode: serve solve jobs until the
// parent kills us.
func farmWorkerMain(addr string) error {
	w := &solvefarm.Worker{Reg: telemetry.NewRegistry()}
	return http.ListenAndServe(addr, w.Handler())
}

// farmProc is one spawned worker process.
type farmProc struct {
	addr string
	cmd  *exec.Cmd
}

// spawnFarm starts n worker processes on free ports and waits for their
// /healthz. The caller must call stopFarm.
func spawnFarm(n int) ([]*farmProc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	var procs []*farmProc
	for i := 0; i < n; i++ {
		addr, err := freeAddr()
		if err != nil {
			stopFarm(procs)
			return nil, err
		}
		cmd := exec.Command(exe, "-farm-worker", "-farm-worker-addr", addr)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stopFarm(procs)
			return nil, err
		}
		procs = append(procs, &farmProc{addr: addr, cmd: cmd})
	}
	client := &http.Client{Timeout: time.Second}
	for _, p := range procs {
		if err := waitHealthy(client, p.addr, 10*time.Second); err != nil {
			stopFarm(procs)
			return nil, fmt.Errorf("worker %s: %w", p.addr, err)
		}
	}
	return procs, nil
}

func stopFarm(procs []*farmProc) {
	for _, p := range procs {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
		}
	}
	for _, p := range procs {
		_ = p.cmd.Wait()
	}
}

func waitHealthy(client *http.Client, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("no healthy answer within %s", timeout)
}

// freeAddr reserves an ephemeral port and releases it for the worker.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// farmBench spawns the worker fleet and runs the farm benchmark against
// it, killing the last worker mid-flush for the fault pass.
func farmBench(docs, votes, farmWorkers, dispatch, rounds int, seed int64) (harness.FarmResult, error) {
	// Dispatching a remote solve parks in network wait, not on a local
	// core, so the dispatch concurrency must track the fleet size — not
	// GOMAXPROCS — or a small writer host serializes the whole farm.
	if dispatch < 2*farmWorkers {
		dispatch = 2 * farmWorkers
	}
	procs, err := spawnFarm(farmWorkers)
	if err != nil {
		return harness.FarmResult{}, err
	}
	defer stopFarm(procs)
	addrs := make([]string, len(procs))
	for i, p := range procs {
		addrs[i] = p.addr
	}
	disp, err := solvefarm.New(solvefarm.Options{Workers: addrs})
	if err != nil {
		return harness.FarmResult{}, err
	}
	defer disp.Close()
	victim := procs[len(procs)-1]
	return harness.FarmBench(harness.FarmConfig{
		Docs: docs, Votes: votes, Workers: dispatch, Rounds: rounds, Seed: seed,
		// Two clusters per worker keeps the fleet saturated even when
		// cluster solve times are uneven.
		Clusters: 2 * farmWorkers,
		Addrs:    addrs,
		Solver:   disp,
		KillWorker: func() error {
			return victim.cmd.Process.Kill()
		},
		KillAddr: victim.addr,
	})
}
