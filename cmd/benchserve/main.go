// Command benchserve measures the serving path: the legacy serialized
// ask (attach a query node, rank under the writer mutex) against the
// lock-free snapshot path (virtual seed vector against the published
// CSR, pooled scorers, parallel workers), plus the durable write path
// under each WAL fsync policy. Results go to stdout and are appended as a
// timestamped run to a JSON history file consumed by `make bench-serve`,
// so regressions are visible across runs.
//
// Usage:
//
//	benchserve [-docs n] [-queries n] [-workers n] [-seed n] [-out file] [-wal=false]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"kgvote/internal/harness"
)

func main() {
	var (
		docs    = flag.Int("docs", 200, "corpus documents")
		queries = flag.Int("queries", 300, "questions per measured pass")
		workers = flag.Int("workers", 0, "snapshot-path goroutines (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "BENCH_serve.json", "JSON history file to append to (empty = skip)")
		withWal = flag.Bool("wal", true, "also measure the durable vote path per fsync policy")
		votes   = flag.Int("votes", 150, "ask+vote rounds per WAL pass")
		withTel = flag.Bool("telemetry", true, "also measure the Ask-path overhead of a live metrics registry")

		flushMode  = flag.Bool("flush", false, "run the flush-path benchmark instead of the serve benchmarks")
		flushOut   = flag.String("flushout", "BENCH_flush.json", "flush-mode JSON history file to append to (empty = skip)")
		flushVotes = flag.Int("flush-votes", 64, "flush-mode batch size")
		flushDocs  = flag.Int("flush-docs", 120, "flush-mode corpus documents")
		rounds     = flag.Int("rounds", 3, "flush-mode timed repetitions per pass (min kept)")
	)
	flag.Parse()
	var err error
	if *flushMode {
		err = flushMain(*flushDocs, *flushVotes, *workers, *rounds, *seed, *flushOut)
	} else {
		err = realMain(*docs, *queries, *workers, *votes, *seed, *out, *withWal, *withTel)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

// flushRun is one timestamped flush-benchmark execution in
// BENCH_flush.json (same {"runs":[...]} schema as BENCH_serve.json).
type flushRun struct {
	Time  string              `json:"time"`
	Flush harness.FlushResult `json:"flush"`
}

type flushHistory struct {
	Runs []flushRun `json:"runs"`
}

// flushMain runs the flush-path benchmark and appends the result to the
// flush history file.
func flushMain(docs, votes, workers, rounds int, seed int64, out string) error {
	res, err := harness.FlushBench(harness.FlushConfig{
		Docs: docs, Votes: votes, Workers: workers, Rounds: rounds, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if out == "" {
		return nil
	}
	var hist flushHistory
	b, err := os.ReadFile(out)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(b, &hist); err != nil {
			return fmt.Errorf("unreadable history %s: %w", out, err)
		}
	}
	hist.Runs = append(hist.Runs, flushRun{
		Time: time.Now().UTC().Format(time.RFC3339), Flush: res,
	})
	nb, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(nb, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	return nil
}

// benchRun is one timestamped benchmark execution in the history file.
type benchRun struct {
	Time      string                   `json:"time"`
	Serve     harness.ServeResult      `json:"serve"`
	Wal       *harness.WalResult       `json:"wal,omitempty"`
	Telemetry *harness.TelemetryResult `json:"telemetry,omitempty"`
}

// benchHistory is the on-disk shape of BENCH_serve.json: every run ever
// appended, oldest first.
type benchHistory struct {
	Runs []benchRun `json:"runs"`
}

func realMain(docs, queries, workers, votes int, seed int64, out string, withWal, withTel bool) error {
	res, err := harness.ServeBench(harness.ServeConfig{
		Docs: docs, Queries: queries, Workers: workers, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	run := benchRun{Time: time.Now().UTC().Format(time.RFC3339), Serve: res}
	if withWal {
		wres, err := harness.WalBench(harness.WalBenchConfig{Docs: docs / 2, Votes: votes, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(wres)
		run.Wal = &wres
	}
	if withTel {
		tres, err := harness.TelemetryBench(harness.TelemetryConfig{
			Docs: docs, Queries: queries, Workers: workers, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(tres)
		run.Telemetry = &tres
	}
	if out == "" {
		return nil
	}
	hist, err := loadHistory(out)
	if err != nil {
		return err
	}
	hist.Runs = append(hist.Runs, run)
	b, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	return nil
}

// loadHistory reads the existing history file. A file written before the
// history format — a single bare ServeResult object — is converted into a
// one-run history so no measurements are lost.
func loadHistory(path string) (benchHistory, error) {
	var hist benchHistory
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return hist, nil
	}
	if err != nil {
		return hist, err
	}
	var probe struct {
		Runs *json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return hist, fmt.Errorf("unreadable history %s: %w", path, err)
	}
	if probe.Runs == nil {
		var legacy harness.ServeResult
		if err := json.Unmarshal(b, &legacy); err != nil {
			return hist, fmt.Errorf("unreadable legacy result %s: %w", path, err)
		}
		hist.Runs = append(hist.Runs, benchRun{Serve: legacy})
		return hist, nil
	}
	if err := json.Unmarshal(b, &hist); err != nil {
		return hist, fmt.Errorf("unreadable history %s: %w", path, err)
	}
	return hist, nil
}
