// Command benchserve measures the serving path: the legacy serialized
// ask (attach a query node, rank under the writer mutex) against the
// lock-free snapshot path (virtual seed vector against the published
// CSR, pooled scorers, parallel workers). Results go to stdout and to a
// JSON file consumed by `make bench-serve`.
//
// Usage:
//
//	benchserve [-docs n] [-queries n] [-workers n] [-seed n] [-out file]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"kgvote/internal/harness"
)

func main() {
	var (
		docs    = flag.Int("docs", 200, "corpus documents")
		queries = flag.Int("queries", 300, "questions per measured pass")
		workers = flag.Int("workers", 0, "snapshot-path goroutines (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "BENCH_serve.json", "JSON output file (empty = skip)")
	)
	flag.Parse()
	if err := realMain(*docs, *queries, *workers, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

func realMain(docs, queries, workers int, seed int64, out string) error {
	res, err := harness.ServeBench(harness.ServeConfig{
		Docs: docs, Queries: queries, Workers: workers, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if out == "" {
		return nil
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
