// Command benchserve measures the serving path: the legacy serialized
// ask (attach a query node, rank under the writer mutex) against the
// lock-free snapshot path (virtual seed vector against the published
// CSR, pooled scorers, parallel workers), plus the durable write path
// under each WAL fsync policy. Results go to stdout and are appended as a
// timestamped run to a JSON history file consumed by `make bench-serve`,
// so regressions are visible across runs.
//
// Two alternative modes replace the serve benchmarks when selected:
// -flush runs the flush-path benchmark, and -overload runs the overload
// smoke (flood /v1/vote far past the admission queue's capacity, verify
// exact shedding with 429 + Retry-After, responsive reads, and bounded
// memory; exits non-zero when the contract is violated).
//
// Usage:
//
//	benchserve [-docs n] [-queries n] [-workers n] [-seed n] [-out file] [-wal=false]
//	benchserve -flush [-flush-votes n] [-flush-docs n] [-rounds n]
//	benchserve -overload [-overload-cap n] [-overload-flood n]
//	benchserve -tenants n [-tenant-cap n] [-tenant-flood n] [-tenant-asks n]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kgvote/internal/harness"
	"kgvote/internal/synth"
)

func main() {
	var (
		docs    = flag.Int("docs", 200, "corpus documents")
		queries = flag.Int("queries", 300, "questions per measured pass")
		workers = flag.Int("workers", 0, "snapshot-path goroutines (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "BENCH_serve.json", "JSON history file to append to (empty = skip)")
		withWal = flag.Bool("wal", true, "also measure the durable vote path per fsync policy")
		votes   = flag.Int("votes", 150, "ask+vote rounds per WAL pass")
		withTel = flag.Bool("telemetry", true, "also measure the Ask-path overhead of a live metrics registry")

		flushMode  = flag.Bool("flush", false, "run the flush-path benchmark instead of the serve benchmarks")
		flushOut   = flag.String("flushout", "BENCH_flush.json", "flush-mode JSON history file to append to (empty = skip)")
		flushVotes = flag.Int("flush-votes", 64, "flush-mode batch size")
		flushDocs  = flag.Int("flush-docs", 120, "flush-mode corpus documents")
		rounds     = flag.Int("rounds", 3, "flush-mode timed repetitions per pass (min kept)")

		farmWorkers    = flag.Int("farm-workers", 0, "flush mode: also dispatch the flush to this many spawned solve-worker processes, assert bit-identical weights, and kill one mid-flush (0 disables)")
		farmWorker     = flag.Bool("farm-worker", false, "internal: run as a solve worker (spawned by -farm-workers)")
		farmWorkerAddr = flag.String("farm-worker-addr", "", "internal: -farm-worker listen address")

		overloadMode  = flag.Bool("overload", false, "run the overload smoke instead: flood /v1/vote past capacity and verify the shedding contract (exit 1 on violation)")
		overloadCap   = flag.Int("overload-cap", 8, "overload-mode admission queue capacity")
		overloadFlood = flag.Int("overload-flood", 0, "overload-mode total vote attempts (0 = 25× capacity)")
		overloadOut   = flag.String("overload-out", "BENCH_overload.json", "overload-mode JSON history file to append to (empty = skip)")

		clusterShards   = flag.Int("cluster", 0, "run the sharded-serving benchmark instead, over this many shard writers (0 disables; exit 1 on determinism/degradation violation)")
		clusterReplicas = flag.Int("cluster-replicas", 1, "cluster mode: read replicas per shard")

		pprMode    = flag.Bool("ppr", false, "run the incremental-scorer benchmark instead: enum vs push cold ranks and per-flush update cost across profile scales (exit 1 on a bound/scaling violation)")
		pprScale   = flag.Float64("ppr-scale", 4, "ppr-mode factor for the second Twitter profile")
		pprQueries = flag.Int("ppr-queries", 16, "ppr-mode tracked seed vectors")
		pprDelta   = flag.Int("ppr-delta", 8, "ppr-mode changed edges per flush")
		pprFlushes = flag.Int("ppr-flushes", 4, "ppr-mode flushes per profile")
		pprFloor   = flag.Float64("ppr-min-speedup", 5, "ppr-mode asserted floor on the largest profile's per-flush enum/push speedup (negative disables)")

		tenantsN    = flag.Int("tenants", 0, "run the multi-tenant isolation bench instead, over this many tenants (0 disables; exit 1 on a quota/interference/leakage violation)")
		tenantCap   = flag.Int("tenant-cap", 8, "tenants-mode per-tenant admission quota")
		tenantFlood = flag.Int("tenant-flood", 0, "tenants-mode vote attempts against the noisy tenant (0 = 25× quota)")
		tenantAsks  = flag.Int("tenant-asks", 200, "tenants-mode quiet-tenant ask probes per phase")

		scenariosMode   = flag.Bool("scenarios", false, "run the adversarial vote-workload scenarios instead: reputation quarantine on vs off per attack family (exit 1 on a ranking-quality violation)")
		scenarioDocs    = flag.Int("scenario-docs", 60, "scenarios-mode corpus documents")
		scenarioTrain   = flag.Int("scenario-train", 30, "scenarios-mode training questions (the voted set)")
		scenarioTest    = flag.Int("scenario-test", 30, "scenarios-mode held-out test questions")
		scenarioInclude = flag.String("scenario-include", "", "scenarios-mode comma-separated scenario names to run (empty = all)")
	)
	flag.Parse()
	var err error
	switch {
	case *farmWorker:
		err = farmWorkerMain(*farmWorkerAddr)
	case *overloadMode:
		err = overloadMain(*docs, *overloadCap, *overloadFlood, *workers, *seed, *overloadOut)
	case *flushMode:
		err = flushMain(*flushDocs, *flushVotes, *workers, *farmWorkers, *rounds, *seed, *flushOut)
	case *clusterShards > 0:
		err = clusterMain(*docs, *clusterShards, *clusterReplicas, *queries, *seed, *out)
	case *tenantsN > 0:
		err = tenantsMain(*docs, *tenantsN, *tenantCap, *tenantFlood, *tenantAsks, *workers, *seed, *out)
	case *scenariosMode:
		err = scenariosMain(*scenarioDocs, *scenarioTrain, *scenarioTest, *seed, *scenarioInclude, *out)
	case *pprMode:
		err = pprMain(*pprScale, *pprQueries, *pprDelta, *pprFlushes, *pprFloor, *seed, *out)
	default:
		err = realMain(*docs, *queries, *workers, *votes, *seed, *out, *withWal, *withTel)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

// overloadRun is one timestamped overload-smoke execution in
// BENCH_overload.json (same {"runs":[...]} schema as the other files).
type overloadRun struct {
	Time               string                 `json:"time"`
	harness.Provenance                        // go_version, gomaxprocs, num_cpu
	Overload           harness.OverloadResult `json:"overload"`
}

type overloadHistory struct {
	Runs []overloadRun `json:"runs"`
}

// overloadMain floods the server past capacity, appends the measured run
// to the history file, and fails the process when the run violated the
// overload contract — this is the CI smoke's teeth.
func overloadMain(docs, capacity, flood, workers int, seed int64, out string) error {
	res, err := harness.OverloadBench(harness.OverloadConfig{
		Docs: docs, Capacity: capacity, Flood: flood, Workers: workers, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if out != "" {
		var hist overloadHistory
		b, rerr := os.ReadFile(out)
		switch {
		case errors.Is(rerr, os.ErrNotExist):
		case rerr != nil:
			return rerr
		default:
			if err := json.Unmarshal(b, &hist); err != nil {
				return fmt.Errorf("unreadable history %s: %w", out, err)
			}
		}
		hist.Runs = append(hist.Runs, overloadRun{
			Time: time.Now().UTC().Format(time.RFC3339), Provenance: harness.CollectProvenance(), Overload: res,
		})
		nb, err := json.MarshalIndent(hist, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(nb, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	}
	return res.Err()
}

// flushRun is one timestamped flush-benchmark execution in
// BENCH_flush.json (same {"runs":[...]} schema as BENCH_serve.json).
type flushRun struct {
	Time               string              `json:"time"`
	harness.Provenance                     // go_version, gomaxprocs, num_cpu
	Flush              harness.FlushResult `json:"flush"`
	Farm               *harness.FarmResult `json:"farm,omitempty"`
}

type flushHistory struct {
	Runs []flushRun `json:"runs"`
}

// flushMain runs the flush-path benchmark — plus the multi-process farm
// pass when -farm-workers is set — and appends the result to the flush
// history file.
func flushMain(docs, votes, workers, farmWorkers, rounds int, seed int64, out string) error {
	res, err := harness.FlushBench(harness.FlushConfig{
		Docs: docs, Votes: votes, Workers: workers, Rounds: rounds, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	var farm *harness.FarmResult
	if farmWorkers > 0 {
		fres, err := farmBench(docs, votes, farmWorkers, workers, rounds, seed)
		if err != nil {
			return fmt.Errorf("farm pass: %w", err)
		}
		fmt.Println(fres)
		farm = &fres
	}
	if out == "" {
		return nil
	}
	var hist flushHistory
	b, err := os.ReadFile(out)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(b, &hist); err != nil {
			return fmt.Errorf("unreadable history %s: %w", out, err)
		}
	}
	hist.Runs = append(hist.Runs, flushRun{
		Time: time.Now().UTC().Format(time.RFC3339), Provenance: harness.CollectProvenance(), Flush: res, Farm: farm,
	})
	nb, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(nb, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	return nil
}

// benchRun is one timestamped benchmark execution in the history file.
// Serve is zero-valued (and omitted) for cluster-mode runs.
type benchRun struct {
	Time               string                   `json:"time"`
	harness.Provenance                          // go_version, gomaxprocs, num_cpu
	Serve              *harness.ServeResult     `json:"serve,omitempty"`
	Wal                *harness.WalResult       `json:"wal,omitempty"`
	Telemetry          *harness.TelemetryResult `json:"telemetry,omitempty"`
	Cluster            *harness.ClusterResult   `json:"cluster,omitempty"`
	Scenarios          *harness.ScenarioResult  `json:"scenarios,omitempty"`
	Ppr                *harness.PPRResult       `json:"ppr,omitempty"`
	Tenants            *harness.TenantResult    `json:"tenants,omitempty"`
}

// benchHistory is the on-disk shape of BENCH_serve.json: every run ever
// appended, oldest first.
type benchHistory struct {
	Runs []benchRun `json:"runs"`
}

func realMain(docs, queries, workers, votes int, seed int64, out string, withWal, withTel bool) error {
	res, err := harness.ServeBench(harness.ServeConfig{
		Docs: docs, Queries: queries, Workers: workers, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	run := benchRun{Time: time.Now().UTC().Format(time.RFC3339), Provenance: harness.CollectProvenance(), Serve: &res}
	if withWal {
		wres, err := harness.WalBench(harness.WalBenchConfig{Docs: docs / 2, Votes: votes, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(wres)
		run.Wal = &wres
	}
	if withTel {
		tres, err := harness.TelemetryBench(harness.TelemetryConfig{
			Docs: docs, Queries: queries, Workers: workers, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(tres)
		run.Telemetry = &tres
	}
	if out == "" {
		return nil
	}
	hist, err := loadHistory(out)
	if err != nil {
		return err
	}
	hist.Runs = append(hist.Runs, run)
	b, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	return nil
}

// clusterMain runs the sharded-serving benchmark (DESIGN.md §14) and
// appends the run to the serve history file. Like the overload smoke,
// correctness violations (merge determinism, partial degradation) fail
// the process after the run is recorded.
func clusterMain(docs, shards, replicas, queries int, seed int64, out string) error {
	res, err := harness.ClusterBench(harness.ClusterConfig{
		Docs: docs, Shards: shards, Replicas: replicas, Queries: queries, Seed: seed,
	})
	if err != nil && res.Err() == nil {
		return err
	}
	fmt.Println(res)
	if out != "" {
		hist, herr := loadHistory(out)
		if herr != nil {
			return herr
		}
		hist.Runs = append(hist.Runs, benchRun{
			Time:       time.Now().UTC().Format(time.RFC3339),
			Provenance: harness.CollectProvenance(),
			Cluster:    &res,
		})
		b, herr := json.MarshalIndent(hist, "", "  ")
		if herr != nil {
			return herr
		}
		if herr := os.WriteFile(out, append(b, '\n'), 0o644); herr != nil {
			return herr
		}
		fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	}
	return res.Err()
}

// tenantsMain runs the multi-tenant isolation bench (DESIGN.md §17) —
// flood one tenant's vote quota, verify quota-exact tenant_quota_exceeded
// sheds, co-resident ask p95 within 2× of the unflooded baseline, and
// zero bitwise weight leakage — and appends the run to the serve history
// file. Like the other smokes, violations fail the process after the run
// is recorded.
func tenantsMain(docs, tenants, capacity, flood, asks, workers int, seed int64, out string) error {
	res, err := harness.TenantBench(harness.TenantConfig{
		Docs: docs, Tenants: tenants, Capacity: capacity, Flood: flood, Asks: asks, Workers: workers, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if out != "" {
		hist, herr := loadHistory(out)
		if herr != nil {
			return herr
		}
		hist.Runs = append(hist.Runs, benchRun{
			Time:       time.Now().UTC().Format(time.RFC3339),
			Provenance: harness.CollectProvenance(),
			Tenants:    &res,
		})
		b, herr := json.MarshalIndent(hist, "", "  ")
		if herr != nil {
			return herr
		}
		if herr := os.WriteFile(out, append(b, '\n'), 0o644); herr != nil {
			return herr
		}
		fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	}
	return res.Err()
}

// scenariosMain replays the adversarial vote-workload scenarios
// (DESIGN.md §15) — quarantine on vs quarantine off per attack family —
// and appends the run to the serve history file. Like the overload and
// cluster smokes, ranking-quality violations fail the process after the
// run is recorded.
func scenariosMain(docs, train, test int, seed int64, include, out string) error {
	var names []string
	if include != "" {
		for _, n := range strings.Split(include, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	res, err := harness.ScenarioBench(harness.ScenarioConfig{
		Config:  harness.Config{Seed: seed, Docs: docs, TrainQuestions: train, TestQuestions: test},
		Include: names,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if out != "" {
		hist, herr := loadHistory(out)
		if herr != nil {
			return herr
		}
		hist.Runs = append(hist.Runs, benchRun{
			Time:       time.Now().UTC().Format(time.RFC3339),
			Provenance: harness.CollectProvenance(),
			Scenarios:  &res,
		})
		b, herr := json.MarshalIndent(hist, "", "  ")
		if herr != nil {
			return herr
		}
		if herr := os.WriteFile(out, append(b, '\n'), 0o644); herr != nil {
			return herr
		}
		fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	}
	return res.Err()
}

// loadHistory reads the existing history file. A file written before the
// history format — a single bare ServeResult object — is converted into a
// one-run history so no measurements are lost.
func loadHistory(path string) (benchHistory, error) {
	var hist benchHistory
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return hist, nil
	}
	if err != nil {
		return hist, err
	}
	var probe struct {
		Runs *json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return hist, fmt.Errorf("unreadable history %s: %w", path, err)
	}
	if probe.Runs == nil {
		var legacy harness.ServeResult
		if err := json.Unmarshal(b, &legacy); err != nil {
			return hist, fmt.Errorf("unreadable legacy result %s: %w", path, err)
		}
		hist.Runs = append(hist.Runs, benchRun{Serve: &legacy})
		return hist, nil
	}
	if err := json.Unmarshal(b, &hist); err != nil {
		return hist, fmt.Errorf("unreadable history %s: %w", path, err)
	}
	return hist, nil
}

// pprMain runs the incremental-scorer benchmark (DESIGN.md §16) — exact
// enumerator vs edge-based local push, cold and per-flush, across two
// Twitter profile scales — and appends the run to the serve history
// file. Like the other smokes, bound/scaling violations fail the process
// after the run is recorded.
func pprMain(scale float64, queries, delta, flushes int, floor float64, seed int64, out string) error {
	res, err := harness.PPRBench(harness.PPRConfig{
		Profiles:   []synth.Profile{synth.Twitter, synth.Twitter.Scaled(scale)},
		Queries:    queries,
		Delta:      delta,
		Flushes:    flushes,
		MinSpeedup: floor,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if out != "" {
		hist, herr := loadHistory(out)
		if herr != nil {
			return herr
		}
		hist.Runs = append(hist.Runs, benchRun{
			Time:       time.Now().UTC().Format(time.RFC3339),
			Provenance: harness.CollectProvenance(),
			Ppr:        &res,
		})
		b, herr := json.MarshalIndent(hist, "", "  ")
		if herr != nil {
			return herr
		}
		if herr := os.WriteFile(out, append(b, '\n'), 0o644); herr != nil {
			return herr
		}
		fmt.Printf("appended run %d to %s\n", len(hist.Runs), out)
	}
	return res.Err()
}
