// Command experiments regenerates every table and figure of the paper's
// evaluation section on synthetic substitutes of its datasets.
//
// Usage:
//
//	experiments [-run name] [-seed n] [-scale f] [-paper]
//
// where name is one of: all (default), figure2, tableIII, tableIV, tableV,
// figure5, tableVI, figure6, figure7, ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kgvote/internal/harness"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment to run (all, figure2, tableIII, tableIV, tableV, figure5, tableVI, figure6, figure7, ablations)")
		seed   = flag.Int64("seed", 1, "random seed")
		scale  = flag.Float64("scale", 0, "graph scale factor for the KONECT profiles (0 = default)")
		paper  = flag.Bool("paper", false, "use the paper's experiment sizes (slow: expect minutes to hours)")
		format = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()
	if err := realMain(*run, *seed, *scale, *paper, *format); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(run string, seed int64, scale float64, paper bool, format string) error {
	if format != "table" && format != "csv" {
		return fmt.Errorf("unknown format %q (table, csv)", format)
	}
	cfg := harness.Config{Seed: seed}
	if paper {
		cfg = harness.Paper()
		cfg.Seed = seed
	}
	if scale > 0 {
		cfg.GraphScale = scale
	}

	type experiment struct {
		name string
		fn   func() (harness.Table, error)
	}
	experiments := []experiment{
		{"figure2", func() (harness.Table, error) { return harness.Figure2(), nil }},
		{"tableIII", func() (harness.Table, error) { return harness.TableIII(cfg) }},
		{"tableIV", func() (harness.Table, error) { return harness.TableIV(cfg) }},
		{"tableV", func() (harness.Table, error) { return harness.TableV(cfg) }},
		{"figure5", func() (harness.Table, error) { return harness.Figure5(cfg) }},
		{"tableVI", func() (harness.Table, error) { return harness.TableVI(cfg) }},
		{"figure6", func() (harness.Table, error) {
			rows, err := harness.Figure6(cfg, nil)
			if err != nil {
				return harness.Table{}, err
			}
			return harness.Figure6Table(rows), nil
		}},
		{"figure7", func() (harness.Table, error) { return harness.Figure7PD(cfg, nil) }},
		{"figure7b", func() (harness.Table, error) { return harness.Figure7Time(cfg, nil) }},
		{"ablation-solver", func() (harness.Table, error) { return harness.AblationSolverMode(cfg) }},
		{"ablation-merge", func() (harness.Table, error) { return harness.AblationMergeRule(cfg) }},
		{"ablation-scorer", func() (harness.Table, error) { return harness.AblationScorer(cfg) }},
		{"ablation-normalize", func() (harness.Table, error) { return harness.AblationNormalize(cfg) }},
		{"ablation-cluster", func() (harness.Table, error) { return harness.AblationCluster(cfg) }},
	}

	match := func(name string) bool {
		switch run {
		case "all":
			return true
		case "figure7":
			return name == "figure7" || name == "figure7b"
		case "ablations":
			return strings.HasPrefix(name, "ablation-")
		default:
			return name == run
		}
	}
	ran := 0
	for _, e := range experiments {
		if !match(e.name) {
			continue
		}
		tab, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if format == "csv" {
			fmt.Printf("# %s\n%s\n", tab.Title, tab.CSV())
		} else {
			fmt.Println(tab)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", run)
	}
	return nil
}
