module kgvote

go 1.22
