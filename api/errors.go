package api

import (
	"fmt"
	"time"
)

// Machine-readable error codes carried by the envelope. Clients branch on
// Code, not on Message.
const (
	// CodeBadRequest: malformed body or invalid parameters (400).
	CodeBadRequest = "bad_request"
	// CodeUnprocessable: well-formed request the engine cannot serve
	// (unknown entities, optimization failure; 422).
	CodeUnprocessable = "unprocessable"
	// CodeQueueFull: the admission queue is at capacity (429).
	CodeQueueFull = "queue_full"
	// CodeRateLimited: the per-client token bucket is empty (429).
	CodeRateLimited = "rate_limited"
	// CodeFlushBackpressure: an optimization flush is in flight and the
	// queue is past the watermark (429).
	CodeFlushBackpressure = "flush_backpressure"
	// CodeDraining: the server is shutting down and no longer admits
	// writes (503).
	CodeDraining = "draining"
	// CodeTimeout: the request's context expired before the writer lock
	// or a durability append could be acquired (503).
	CodeTimeout = "timeout"
	// CodeUnavailable: the durability layer rejected the operation (503).
	CodeUnavailable = "unavailable"
	// CodeNotImplemented: the endpoint needs a configuration the daemon
	// is running without (501).
	CodeNotImplemented = "not_implemented"
	// CodeReadOnly: the process is a read replica; writes go to its
	// writer (501).
	CodeReadOnly = "read_only"
	// CodeMisrouted: the request names a document this shard does not
	// own; re-resolve the owner from the shard map (421).
	CodeMisrouted = "misrouted"
	// CodeWeightsGap: a replication push skipped a sequence; the source
	// must re-send a full export (409).
	CodeWeightsGap = "weights_gap"
	// CodeInternal: invariant violation; restart may be required (500).
	CodeInternal = "internal"
)

// ErrorBody is the uniform error envelope every handler returns:
//
//	{"error":{"code":"queue_full","message":"...","retry_after_ms":250}}
type ErrorBody struct {
	Error Error `json:"error"`
}

// Error is the envelope payload. It doubles as the error value returned
// by api/client, so callers can errors.As it and branch on Code.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS hints when a shed request is worth retrying; 0 means
	// no hint. The same hint is mirrored in the Retry-After header
	// (rounded up to whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// HTTPStatus is the response status the envelope traveled with. It is
	// filled by api/client and not serialized.
	HTTPStatus int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.HTTPStatus != 0 {
		return fmt.Sprintf("api: %s (%d): %s", e.Code, e.HTTPStatus, e.Message)
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// RetryAfter returns the retry hint as a duration (0 = none).
func (e *Error) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMS) * time.Millisecond
}

// Temporary reports whether retrying the identical request later can
// succeed without any change by the caller.
func (e *Error) Temporary() bool {
	switch e.Code {
	case CodeQueueFull, CodeRateLimited, CodeFlushBackpressure, CodeDraining, CodeTimeout, CodeUnavailable:
		return true
	}
	return false
}
