package api

import (
	"fmt"
	"time"
)

// Machine-readable error codes carried by the envelope. Clients branch on
// Code, not on Message.
const (
	// CodeBadRequest: malformed body or invalid parameters (400).
	CodeBadRequest = "bad_request"
	// CodeUnprocessable: well-formed request the engine cannot serve
	// (unknown entities, optimization failure; 422).
	CodeUnprocessable = "unprocessable"
	// CodeQueueFull: the admission queue is at capacity (429).
	CodeQueueFull = "queue_full"
	// CodeRateLimited: the per-client token bucket is empty (429).
	CodeRateLimited = "rate_limited"
	// CodeFlushBackpressure: an optimization flush is in flight and the
	// queue is past the watermark (429).
	CodeFlushBackpressure = "flush_backpressure"
	// CodeDraining: the server is shutting down and no longer admits
	// writes (503).
	CodeDraining = "draining"
	// CodeTimeout: the request's context expired before the writer lock
	// or a durability append could be acquired (503).
	CodeTimeout = "timeout"
	// CodeUnavailable: the durability layer rejected the operation (503).
	CodeUnavailable = "unavailable"
	// CodeNotImplemented: the endpoint needs a configuration the daemon
	// is running without (501).
	CodeNotImplemented = "not_implemented"
	// CodeReadOnly: the process is a read replica; writes go to its
	// writer (501).
	CodeReadOnly = "read_only"
	// CodeMisrouted: the request names a document this shard does not
	// own; re-resolve the owner from the shard map (421).
	CodeMisrouted = "misrouted"
	// CodeWeightsGap: a replication push skipped a sequence; the source
	// must re-send a full export (409).
	CodeWeightsGap = "weights_gap"
	// CodeTenantNotFound: the path names a tenant the registry does not
	// host — never created, deleted, or an invalid id (404). The envelope
	// carries the offending id in Tenant.
	CodeTenantNotFound = "tenant_not_found"
	// CodeTenantQuota: the tenant's admission quota shed the vote —
	// queue cap, per-client rate, or flush backpressure (429 +
	// Retry-After). The envelope carries the tenant id in Tenant.
	CodeTenantQuota = "tenant_quota_exceeded"
	// CodeTenantExists: tenant creation collided with a live tenant of
	// the same id (409).
	CodeTenantExists = "tenant_exists"
	// CodeInternal: invariant violation; restart may be required (500).
	CodeInternal = "internal"
)

// ErrorBody is the uniform error envelope every handler returns:
//
//	{"error":{"code":"queue_full","message":"...","retry_after_ms":250}}
type ErrorBody struct {
	Error Error `json:"error"`
}

// Error is the envelope payload. It doubles as the error value returned
// by api/client, so callers can errors.As it and branch on Code.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS hints when a shed request is worth retrying; 0 means
	// no hint. The same hint is mirrored in the Retry-After header
	// (rounded up to whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Tenant names the tenant a tenant_not_found / tenant_quota_exceeded
	// envelope is about; empty on every other code.
	Tenant string `json:"tenant,omitempty"`
	// HTTPStatus is the response status the envelope traveled with. It is
	// filled by api/client and not serialized.
	HTTPStatus int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.HTTPStatus != 0 {
		return fmt.Sprintf("api: %s (%d): %s", e.Code, e.HTTPStatus, e.Message)
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// RetryAfter returns the retry hint as a duration (0 = none).
func (e *Error) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMS) * time.Millisecond
}

// Temporary reports whether retrying the identical request later can
// succeed without any change by the caller.
func (e *Error) Temporary() bool {
	switch e.Code {
	case CodeQueueFull, CodeRateLimited, CodeFlushBackpressure, CodeDraining, CodeTimeout, CodeUnavailable, CodeTenantQuota:
		return true
	}
	return false
}

// Unwrap exposes the typed tenant errors to errors.As, so callers can
// branch without string-comparing codes:
//
//	var nf *api.TenantNotFoundError
//	if errors.As(err, &nf) { provision(nf.Tenant) }
//
// Non-tenant codes unwrap to nothing.
func (e *Error) Unwrap() error {
	switch e.Code {
	case CodeTenantNotFound:
		return &TenantNotFoundError{Tenant: e.Tenant}
	case CodeTenantQuota:
		return &TenantQuotaError{Tenant: e.Tenant, RetryAfterMS: e.RetryAfterMS}
	}
	return nil
}

// TenantNotFoundError is the typed form of a tenant_not_found envelope
// (404): the addressed tenant is not hosted by the registry.
type TenantNotFoundError struct {
	Tenant string
}

func (e *TenantNotFoundError) Error() string {
	return fmt.Sprintf("api: tenant %q not found", e.Tenant)
}

// TenantQuotaError is the typed form of a tenant_quota_exceeded
// envelope (429): the tenant's admission quota shed the request.
type TenantQuotaError struct {
	Tenant       string
	RetryAfterMS int64
}

func (e *TenantQuotaError) Error() string {
	return fmt.Sprintf("api: tenant %q quota exceeded (retry after %dms)", e.Tenant, e.RetryAfterMS)
}

// RetryAfter returns the shed's retry hint as a duration (0 = none).
func (e *TenantQuotaError) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterMS) * time.Millisecond
}
