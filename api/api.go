// Package api defines the wire contract of the kgvote HTTP service: the
// request and response bodies of every /v1 endpoint, the uniform error
// envelope, and the machine-readable error codes. It is the single source
// of truth shared by the server (internal/server), the load generator
// (cmd/benchserve), the thin HTTP client (api/client), and the examples.
//
// Versioning: all routes are mounted under the /v1 prefix. The
// unprefixed legacy paths (/ask, /vote, ...) are deprecated aliases that
// serve the same bodies and emit a Deprecation header; see API.md.
package api

import (
	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/graph"
	"kgvote/internal/telemetry"
	"kgvote/internal/vote"
)

// QueryHandle identifies a served question for a follow-up /vote or
// /explain call. Handles from /ask are negative and opaque; non-negative
// values name materialized query nodes (persisted systems only).
type QueryHandle = graph.NodeID

// HealthBody is the GET /v1/healthz response.
type HealthBody struct {
	Status string `json:"status"`
}

// StatsBody is the GET /v1/stats response, organized as named sections
// behind stable keys: serving (always), durability / admission /
// reputation / ppr / flush / shard / replica (when configured), and
// tenants (multi-tenant daemons, un-scoped stats only).
//
// The flat top-level fields (entities, edges, votes_accepted, ...)
// duplicate the serving section; they are deprecated and kept for one
// release so existing scrapers keep working — see API.md.
type StatsBody struct {
	Entities       int    `json:"entities"`
	Edges          int    `json:"edges"`
	Documents      int    `json:"documents"`
	VotesAccepted  int    `json:"votes_accepted"`
	VotesPending   int    `json:"votes_pending"`
	Flushes        int    `json:"flushes"`
	Epoch          uint64 `json:"epoch"`
	PendingEvicted int64  `json:"pending_evicted"`
	Draining       bool   `json:"draining,omitempty"`
	// Tenant names the tenant this stats body describes; empty on
	// un-tenanted daemons.
	Tenant string `json:"tenant,omitempty"`
	// Serving is the canonical home of the flat legacy fields above.
	Serving   *ServingStats   `json:"serving,omitempty"`
	Tenants   *TenantsStats   `json:"tenants,omitempty"`
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Reputation is present when the server runs with voter reputation
	// tracking enabled.
	Reputation *vote.ReputationStats `json:"reputation,omitempty"`
	Durability *durable.Stats        `json:"durability,omitempty"`
	Shard      *ShardStats           `json:"shard,omitempty"`
	Replica    *ReplicaStats         `json:"replica,omitempty"`
	// Flush carries cumulative flush-pipeline telemetry (enum-cache
	// effectiveness and per-stage wall-clock totals); PPR is present when
	// the daemon serves with the incremental push backend (-scorer=push).
	Flush *FlushStats `json:"flush,omitempty"`
	PPR   *PPRStats   `json:"ppr,omitempty"`
}

// ServingStats is the serving section of /v1/stats: the graph and vote
// counters every daemon reports. It mirrors StatsBody's deprecated flat
// fields one-for-one.
type ServingStats struct {
	Entities       int    `json:"entities"`
	Edges          int    `json:"edges"`
	Documents      int    `json:"documents"`
	VotesAccepted  int    `json:"votes_accepted"`
	VotesPending   int    `json:"votes_pending"`
	Flushes        int    `json:"flushes"`
	Epoch          uint64 `json:"epoch"`
	PendingEvicted int64  `json:"pending_evicted"`
	Draining       bool   `json:"draining,omitempty"`
}

// TenantsStats is the tenants section of the un-scoped /v1/stats on a
// multi-tenant daemon: one summary row per hosted tenant plus the
// tenants that failed to recover at boot.
type TenantsStats struct {
	Count   int             `json:"count"`
	Failed  int             `json:"failed"`
	Tenants []TenantSummary `json:"tenants"`
}

// TenantSummary is one tenant's row in the tenants section and the
// admin list.
type TenantSummary struct {
	ID string `json:"id"`
	// State is "serving" or "failed" (boot recovery error; see Error).
	State string `json:"state"`
	// Error carries the recovery failure of a failed tenant.
	Error         string `json:"error,omitempty"`
	Documents     int    `json:"documents,omitempty"`
	VotesAccepted int    `json:"votes_accepted,omitempty"`
	VotesPending  int    `json:"votes_pending,omitempty"`
	Flushes       int    `json:"flushes,omitempty"`
	Epoch         uint64 `json:"epoch,omitempty"`
	Draining      bool   `json:"draining,omitempty"`
}

// TenantCreateRequest is the POST /v1/admin/tenants body.
type TenantCreateRequest struct {
	ID string `json:"id"`
}

// TenantListResponse is the GET /v1/admin/tenants response.
type TenantListResponse struct {
	Tenants []TenantSummary `json:"tenants"`
}

// TenantDeleteResponse is the DELETE /v1/admin/tenants/{id} response.
type TenantDeleteResponse struct {
	ID string `json:"id"`
	// Purged reports whether the tenant's data directory was removed
	// (?purge=1); otherwise the WAL and checkpoints stay on disk and the
	// next boot re-hosts the tenant.
	Purged bool `json:"purged"`
}

// FlushStats is the flush-pipeline section of /v1/stats: cumulative
// walk-enumeration cache counters and stage wall-clock totals across
// every flush since boot (the same data /metrics exposes as the
// kgvote_core_flush_stage_seconds histograms and enum-cache counters).
type FlushStats struct {
	EnumCacheHits   uint64  `json:"enum_cache_hits"`
	EnumCacheMisses uint64  `json:"enum_cache_misses"`
	EnumSeconds     float64 `json:"enum_seconds"`
	JudgeSeconds    float64 `json:"judge_seconds"`
	ClusterSeconds  float64 `json:"cluster_seconds"`
	SolveSeconds    float64 `json:"solve_seconds"`
	MergeSeconds    float64 `json:"merge_seconds"`
}

// PPRStats is the incremental push-scorer section of /v1/stats, present
// when the daemon runs with -scorer=push (DESIGN.md §16).
type PPRStats struct {
	// Backend names the serving scorer ("push").
	Backend string `json:"backend"`
	// TrackedSeeds is the number of seed vectors maintained incrementally.
	TrackedSeeds int `json:"tracked_seeds"`
	// ResidualMass is the summed certified error bound across tracked
	// seeds — the approximation budget currently outstanding.
	ResidualMass float64 `json:"residual_mass"`
	// Pushes counts push operations across cold solves and repairs.
	Pushes int64 `json:"pushes"`
	// Updates counts per-flush incremental repairs (snapshot republishes).
	Updates int64 `json:"updates"`
	// ColdRanks counts from-scratch solves on the read path.
	ColdRanks int64 `json:"cold_ranks"`
	// Rebuilds counts tracked seeds re-solved after their bound crossed
	// the rebuild ceiling.
	Rebuilds int64 `json:"rebuilds"`
	// StaleFallbacks counts reads that fell back to the exact enumerator
	// because their snapshot trailed the tracker's epoch.
	StaleFallbacks int64 `json:"stale_fallbacks"`
	// Evictions counts tracked seeds dropped under capacity pressure or
	// unknown-delta resets.
	Evictions int64 `json:"evictions"`
}

// ShardStats is the sharded-serving section of /v1/stats, present when
// the process runs as one shard of a partitioned cluster.
type ShardStats struct {
	// Index/Shards locate this process in the cluster.
	Index  int `json:"index"`
	Shards int `json:"shards"`
	// OwnedDocs is how many documents this shard serves and accepts
	// votes for.
	OwnedDocs int `json:"owned_docs"`
	// MapChecksum fingerprints the loaded shard map (hex CRC-32C);
	// processes disagreeing here are running split-brain.
	MapChecksum string `json:"map_checksum"`
	// RemoteApplied counts peer weight sets applied via POST /v1/weights.
	RemoteApplied int64 `json:"remote_applied"`
	// RemoteSeqs is the last applied replication sequence per source
	// shard.
	RemoteSeqs map[uint32]uint64 `json:"remote_seqs,omitempty"`
}

// ReplicaStats is the read-replica section of /v1/stats, present when
// the process runs with -replica, reported by the snapshot follower.
type ReplicaStats struct {
	// Following is the writer base URL this replica polls.
	Following string `json:"following"`
	// Epoch is the writer epoch of the last imported snapshot.
	Epoch uint64 `json:"epoch"`
	// Syncs counts imported snapshots since boot.
	Syncs int64 `json:"syncs"`
}

// AdmissionStats reports the admission controller's counters.
type AdmissionStats struct {
	QueueCapacity int   `json:"queue_capacity"`
	Admitted      int64 `json:"admitted"`
	Shed          int64 `json:"shed"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedRate      int64 `json:"shed_rate_limited"`
	ShedFlush     int64 `json:"shed_flush_backpressure"`
	Clients       int   `json:"clients"`
}

// AskRequest is the POST /v1/ask request body. Either Text (entity
// extraction) or Entities may be given.
type AskRequest struct {
	Text     string         `json:"text,omitempty"`
	Entities map[string]int `json:"entities,omitempty"`
}

// AskResult is one ranked answer.
type AskResult struct {
	Doc   int     `json:"doc"`
	Title string  `json:"title"`
	Score float64 `json:"score"`
}

// AskResponse is the POST /v1/ask response body. Query is an opaque
// handle identifying the served question for the follow-up /vote or
// /explain call; Epoch identifies the graph snapshot the ranking was
// computed from. Trace is present only when the request asked for it
// (?trace=1).
type AskResponse struct {
	Query   QueryHandle `json:"query"`
	Epoch   uint64      `json:"epoch"`
	Results []AskResult `json:"results"`
	// Entities are the resolved question entities the ranking was seeded
	// with. The router stores them with its handle so a later /v1/vote
	// can be forwarded to the owning shard even when that shard never saw
	// the ask.
	Entities map[string]int `json:"entities,omitempty"`
	// Partial is set by the router when one or more shards failed to
	// answer within the deadline: the results cover only the answering
	// shards' documents. Mirrored in the X-KG-Shards-Answered header.
	Partial bool `json:"partial,omitempty"`
	// ShardsAnswered/ShardsTotal detail the fan-out behind a routed
	// response (router only).
	ShardsAnswered int        `json:"shards_answered,omitempty"`
	ShardsTotal    int        `json:"shards_total,omitempty"`
	Trace          *TraceBody `json:"trace,omitempty"`
}

// AskBatchRequest is the POST /v1/askbatch request body: a read-only
// batch ranking. Batch results carry no vote handles; use /v1/ask when a
// follow-up vote is expected.
type AskBatchRequest struct {
	Questions []AskRequest `json:"questions"`
}

// AskBatchResponse is positional: Results[i] ranks Questions[i].
type AskBatchResponse struct {
	Epoch   uint64        `json:"epoch"`
	Results [][]AskResult `json:"results"`
	// Partial/ShardsAnswered/ShardsTotal mirror AskResponse (router only).
	Partial        bool `json:"partial,omitempty"`
	ShardsAnswered int  `json:"shards_answered,omitempty"`
	ShardsTotal    int  `json:"shards_total,omitempty"`
}

// TraceBody is the inline per-stage timing report of one /v1/ask?trace=1
// request.
type TraceBody struct {
	RequestID   string            `json:"request_id"`
	CacheHit    bool              `json:"cache_hit"`
	Stages      []telemetry.Stage `json:"stages"`
	TotalMicros float64           `json:"total_us"`
}

// VoteRequest is the POST /v1/vote request body: the query handle and
// ranked list from a prior /ask, plus the document the user found best.
type VoteRequest struct {
	Query   QueryHandle `json:"query"`
	Ranked  []int       `json:"ranked"` // document IDs in served order
	BestDoc int         `json:"best_doc"`
	Weight  float64     `json:"weight,omitempty"`
	// Voter identifies the vote's author for reputation scoring (at most
	// 64 bytes). Empty means anonymous: the vote is accepted but exempt
	// from reputation tracking and quarantine.
	Voter string `json:"voter,omitempty"`
	// Entities, when present, let the server materialize the query node
	// directly when Query is graph.None or names an expired/foreign
	// handle. The router always forwards votes with the entities of the
	// original ask, so a vote lands on the owning shard even though that
	// shard may never have served the ask.
	Entities map[string]int `json:"entities,omitempty"`
}

// VoteResponse reports what happened to the vote. In asynchronous-flush
// mode Flushed is always false: the background scheduler runs the solve
// after the response is written.
type VoteResponse struct {
	Kind    string       `json:"kind,omitempty"`
	Pending int          `json:"pending"`
	Flushed bool         `json:"flushed"`
	Report  *core.Report `json:"report,omitempty"`
	// Quarantined is advisory: the vote was accepted and logged, but its
	// voter is currently quarantined, so it will be excluded from batch
	// solves unless the voter's reputation recovers by flush time.
	Quarantined bool `json:"quarantined,omitempty"`
}

// ExplainRequest is the POST /v1/explain request body.
type ExplainRequest struct {
	Query QueryHandle `json:"query"`
	Doc   int         `json:"doc"`
	Top   int         `json:"top,omitempty"`
}

// ExplainResponse decomposes the similarity into walks rendered as node
// name sequences.
type ExplainResponse struct {
	Similarity float64       `json:"similarity"`
	TotalPaths int           `json:"total_paths"`
	Paths      []ExplainPath `json:"paths"`
}

// ExplainPath is one walk with its contribution.
type ExplainPath struct {
	Nodes    []string `json:"nodes"`
	Score    float64  `json:"score"`
	Fraction float64  `json:"fraction"`
}

// CheckpointResponse is the POST /v1/checkpoint response body.
type CheckpointResponse struct {
	Checkpoints int    `json:"checkpoints"`
	WalSeq      uint64 `json:"wal_seq"`
	WalSegments int    `json:"wal_segments"`
}

// WeightEdge is one absolute edge weight on the wire (replication push).
// The weight is a float64 whose JSON round-trips bit-exactly (Go emits
// the shortest representation that parses back to the same bits).
type WeightEdge struct {
	From   int32   `json:"from"`
	To     int32   `json:"to"`
	Weight float64 `json:"w"`
}

// WeightEdgesFromCore converts an applied weight set to wire form.
func WeightEdgesFromCore(ws []core.WeightChange) []WeightEdge {
	out := make([]WeightEdge, len(ws))
	for i, wc := range ws {
		out[i] = WeightEdge{From: int32(wc.From), To: int32(wc.To), Weight: wc.Weight}
	}
	return out
}

// WeightEdgesToCore converts wire edges back to core form.
func WeightEdgesToCore(ws []WeightEdge) []core.WeightChange {
	out := make([]core.WeightChange, len(ws))
	for i, we := range ws {
		out[i] = core.WeightChange{From: graph.NodeID(we.From), To: graph.NodeID(we.To), Weight: we.Weight}
	}
	return out
}

// WeightPushRequest is the POST /v1/weights body: one shard replicating
// an applied absolute weight set to a peer. Seq is a per-source
// monotonic sequence; the receiver applies Seq == last+1, answers
// already-applied sequences idempotently, and rejects gaps with a 409
// weights_gap envelope — the source then re-sends a Full export, which
// supersedes every missed delta because the weights are absolute.
type WeightPushRequest struct {
	Source int          `json:"source"`
	Seq    uint64       `json:"seq"`
	Full   bool         `json:"full,omitempty"`
	Set    []WeightEdge `json:"set"`
}

// WeightPushResponse acknowledges an applied (or skipped) push.
type WeightPushResponse struct {
	Applied int    `json:"applied"` // edges written (0 = stale duplicate)
	Seq     uint64 `json:"seq"`     // receiver's sequence for the source after this call
}

// RouterShard is one shard's view in the router's GET /v1/stats.
type RouterShard struct {
	Index   int        `json:"index"`
	Addr    string     `json:"addr"`
	Replica bool       `json:"replica,omitempty"`
	Healthy bool       `json:"healthy"`
	Stats   *StatsBody `json:"stats,omitempty"` // absent when unreachable
}

// RouterStats is the router's GET /v1/stats response: the cluster map
// plus each endpoint's own stats.
type RouterStats struct {
	Shards        int           `json:"shards"`
	ShardsHealthy int           `json:"shards_healthy"` // shards with >= 1 healthy endpoint
	MapChecksum   string        `json:"map_checksum"`
	Endpoints     []RouterShard `json:"endpoints"`
}

// ShardFlush is one shard's outcome in a routed POST /v1/flush.
type ShardFlush struct {
	Index   int    `json:"index"`
	Pending int    `json:"pending"`
	Flushed bool   `json:"flushed"`
	Error   string `json:"error,omitempty"`
}

// ClusterFlushResponse is the router's POST /v1/flush response: the
// flush fanned out to every shard writer.
type ClusterFlushResponse struct {
	Shards []ShardFlush `json:"shards"`
}
