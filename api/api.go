// Package api defines the wire contract of the kgvote HTTP service: the
// request and response bodies of every /v1 endpoint, the uniform error
// envelope, and the machine-readable error codes. It is the single source
// of truth shared by the server (internal/server), the load generator
// (cmd/benchserve), the thin HTTP client (api/client), and the examples.
//
// Versioning: all routes are mounted under the /v1 prefix. The
// unprefixed legacy paths (/ask, /vote, ...) are deprecated aliases that
// serve the same bodies and emit a Deprecation header; see API.md.
package api

import (
	"kgvote/internal/core"
	"kgvote/internal/durable"
	"kgvote/internal/graph"
	"kgvote/internal/telemetry"
)

// QueryHandle identifies a served question for a follow-up /vote or
// /explain call. Handles from /ask are negative and opaque; non-negative
// values name materialized query nodes (persisted systems only).
type QueryHandle = graph.NodeID

// HealthBody is the GET /v1/healthz response.
type HealthBody struct {
	Status string `json:"status"`
}

// StatsBody is the GET /v1/stats response. Durability is present only
// when the daemon runs with a data directory; Admission only when the
// server runs with admission control.
type StatsBody struct {
	Entities       int             `json:"entities"`
	Edges          int             `json:"edges"`
	Documents      int             `json:"documents"`
	VotesAccepted  int             `json:"votes_accepted"`
	VotesPending   int             `json:"votes_pending"`
	Flushes        int             `json:"flushes"`
	Epoch          uint64          `json:"epoch"`
	PendingEvicted int64           `json:"pending_evicted"`
	Draining       bool            `json:"draining,omitempty"`
	Admission      *AdmissionStats `json:"admission,omitempty"`
	Durability     *durable.Stats  `json:"durability,omitempty"`
}

// AdmissionStats reports the admission controller's counters.
type AdmissionStats struct {
	QueueCapacity int   `json:"queue_capacity"`
	Admitted      int64 `json:"admitted"`
	Shed          int64 `json:"shed"`
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedRate      int64 `json:"shed_rate_limited"`
	ShedFlush     int64 `json:"shed_flush_backpressure"`
	Clients       int   `json:"clients"`
}

// AskRequest is the POST /v1/ask request body. Either Text (entity
// extraction) or Entities may be given.
type AskRequest struct {
	Text     string         `json:"text,omitempty"`
	Entities map[string]int `json:"entities,omitempty"`
}

// AskResult is one ranked answer.
type AskResult struct {
	Doc   int     `json:"doc"`
	Title string  `json:"title"`
	Score float64 `json:"score"`
}

// AskResponse is the POST /v1/ask response body. Query is an opaque
// handle identifying the served question for the follow-up /vote or
// /explain call; Epoch identifies the graph snapshot the ranking was
// computed from. Trace is present only when the request asked for it
// (?trace=1).
type AskResponse struct {
	Query   QueryHandle `json:"query"`
	Epoch   uint64      `json:"epoch"`
	Results []AskResult `json:"results"`
	Trace   *TraceBody  `json:"trace,omitempty"`
}

// TraceBody is the inline per-stage timing report of one /v1/ask?trace=1
// request.
type TraceBody struct {
	RequestID   string            `json:"request_id"`
	CacheHit    bool              `json:"cache_hit"`
	Stages      []telemetry.Stage `json:"stages"`
	TotalMicros float64           `json:"total_us"`
}

// VoteRequest is the POST /v1/vote request body: the query handle and
// ranked list from a prior /ask, plus the document the user found best.
type VoteRequest struct {
	Query   QueryHandle `json:"query"`
	Ranked  []int       `json:"ranked"` // document IDs in served order
	BestDoc int         `json:"best_doc"`
	Weight  float64     `json:"weight,omitempty"`
}

// VoteResponse reports what happened to the vote. In asynchronous-flush
// mode Flushed is always false: the background scheduler runs the solve
// after the response is written.
type VoteResponse struct {
	Kind    string       `json:"kind,omitempty"`
	Pending int          `json:"pending"`
	Flushed bool         `json:"flushed"`
	Report  *core.Report `json:"report,omitempty"`
}

// ExplainRequest is the POST /v1/explain request body.
type ExplainRequest struct {
	Query QueryHandle `json:"query"`
	Doc   int         `json:"doc"`
	Top   int         `json:"top,omitempty"`
}

// ExplainResponse decomposes the similarity into walks rendered as node
// name sequences.
type ExplainResponse struct {
	Similarity float64       `json:"similarity"`
	TotalPaths int           `json:"total_paths"`
	Paths      []ExplainPath `json:"paths"`
}

// ExplainPath is one walk with its contribution.
type ExplainPath struct {
	Nodes    []string `json:"nodes"`
	Score    float64  `json:"score"`
	Fraction float64  `json:"fraction"`
}

// CheckpointResponse is the POST /v1/checkpoint response body.
type CheckpointResponse struct {
	Checkpoints int    `json:"checkpoints"`
	WalSeq      uint64 `json:"wal_seq"`
	WalSegments int    `json:"wal_segments"`
}
