package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kgvote/api"
)

// TestErrorEnvelopeDecoding drives Vote against canned error responses
// and checks the decoded *api.Error: code, status, retry hint, and the
// synthesized envelope for non-envelope bodies.
func TestErrorEnvelopeDecoding(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		body       string
		retryAfter string // Retry-After header, optional

		wantCode      string
		wantRetryMS   int64
		wantTemporary bool
	}{
		{
			name:   "429 queue_full with retry_after_ms",
			status: http.StatusTooManyRequests,
			body:   `{"error":{"code":"queue_full","message":"queue at capacity","retry_after_ms":250}}`,

			wantCode:      api.CodeQueueFull,
			wantRetryMS:   250,
			wantTemporary: true,
		},
		{
			name:   "429 rate_limited without retry hint",
			status: http.StatusTooManyRequests,
			body:   `{"error":{"code":"rate_limited","message":"token bucket empty"}}`,

			wantCode:      api.CodeRateLimited,
			wantRetryMS:   0,
			wantTemporary: true,
		},
		{
			name:   "503 draining",
			status: http.StatusServiceUnavailable,
			body:   `{"error":{"code":"draining","message":"shutting down","retry_after_ms":1000}}`,

			wantCode:      api.CodeDraining,
			wantRetryMS:   1000,
			wantTemporary: true,
		},
		{
			name:   "421 misrouted is not temporary",
			status: http.StatusMisdirectedRequest,
			body:   `{"error":{"code":"misrouted","message":"document 7 is owned by shard 2"}}`,

			wantCode:      api.CodeMisrouted,
			wantTemporary: false,
		},
		{
			name:   "malformed envelope is synthesized as internal",
			status: http.StatusBadGateway,
			body:   `<html>upstream exploded</html>`,

			wantCode:      api.CodeInternal,
			wantTemporary: false,
		},
		{
			name:   "empty body is synthesized as internal",
			status: http.StatusInternalServerError,
			body:   "",

			wantCode:      api.CodeInternal,
			wantTemporary: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.retryAfter != "" {
					w.Header().Set("Retry-After", tc.retryAfter)
				}
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(tc.status)
				w.Write([]byte(tc.body))
			}))
			defer ts.Close()

			_, err := New(ts.URL).Vote(context.Background(), api.VoteRequest{Query: 1, Ranked: []int{0, 1}, BestDoc: 1})
			if err == nil {
				t.Fatal("expected an error")
			}
			var apiErr *api.Error
			if !errors.As(err, &apiErr) {
				t.Fatalf("error is %T, want *api.Error: %v", err, err)
			}
			if apiErr.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", apiErr.Code, tc.wantCode)
			}
			if apiErr.HTTPStatus != tc.status {
				t.Errorf("http status = %d, want %d", apiErr.HTTPStatus, tc.status)
			}
			if apiErr.RetryAfterMS != tc.wantRetryMS {
				t.Errorf("retry_after_ms = %d, want %d", apiErr.RetryAfterMS, tc.wantRetryMS)
			}
			if apiErr.Temporary() != tc.wantTemporary {
				t.Errorf("Temporary() = %v, want %v", apiErr.Temporary(), tc.wantTemporary)
			}
		})
	}
}

// TestVoteRetryHonorsRetryAfter checks the happy retry path: a shed
// followed by an accept, with the wait taken from the envelope hint.
func TestVoteRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"queue_full","message":"full","retry_after_ms":10}}`))
			return
		}
		w.Write([]byte(`{"query":1,"pending":1,"flushed":false}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := New(ts.URL).VoteRetry(ctx, api.VoteRequest{Query: 1, Ranked: []int{0, 1}, BestDoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Pending != 1 {
		t.Fatalf("response = %+v", resp)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestVoteRetryCapsWaitAtDeadline: when the server's retry hint reaches
// past the caller's deadline, VoteRetry must return immediately — not
// idle out the remaining budget — with an error that satisfies both
// errors.Is(err, context.DeadlineExceeded) and errors.As(&api.Error),
// and that surfaces the hint in its message.
func TestVoteRetryCapsWaitAtDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"queue_full","message":"full","retry_after_ms":60000}}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(ts.URL).VoteRetry(ctx, api.VoteRequest{Query: 1, Ranked: []int{0, 1}, BestDoc: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("VoteRetry idled %v before giving up; a 60s hint against a 300ms budget must return immediately", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false: %v", err)
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeQueueFull {
		t.Fatalf("last shed envelope not exposed via errors.As: %v", err)
	}
	var re *RetryError
	if !errors.As(err, &re) || re.Last.RetryAfterMS != 60000 {
		t.Fatalf("RetryError.Last missing the retry hint: %v", err)
	}
}

// TestVoteRetryStopsOnCancel: a cancelled context ends the loop with the
// context error, even while a wait is in progress.
func TestVoteRetryStopsOnCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"queue_full","message":"full","retry_after_ms":50}}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := New(ts.URL).VoteRetry(ctx, api.VoteRequest{Query: 1, Ranked: []int{0, 1}, BestDoc: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false: %v", err)
	}
}

// TestVoteRetryPassesThroughPermanentErrors: non-temporary codes return
// on the first attempt, no retries.
func TestVoteRetryPassesThroughPermanentErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":{"code":"unprocessable","message":"unknown entities"}}`))
	}))
	defer ts.Close()

	_, err := New(ts.URL).VoteRetry(context.Background(), api.VoteRequest{Query: 1, Ranked: []int{0, 1}, BestDoc: 1})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnprocessable {
		t.Fatalf("err = %v, want unprocessable", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retries of permanent errors)", got)
	}
}
