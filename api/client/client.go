// Package client is a thin HTTP client for the kgvote /v1 API. It speaks
// the DTOs of package api, decodes the uniform error envelope into
// *api.Error (so callers can branch on the machine-readable code and the
// Retry-After hint), and propagates the caller's context deadline to the
// server on every call.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"kgvote/api"
)

// Client talks to one kgvote server.
type Client struct {
	base string
	hc   *http.Client
	id   string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithClientID sets the X-Client-ID header sent with every request; the
// server's admission controller uses it as the fairness key (falling back
// to the remote address when absent).
func WithClientID(id string) Option {
	return func(c *Client) { c.id = id }
}

// New returns a client for the server at base (e.g. "http://host:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request against a /v1 path and decodes the response into
// out (nil = discard). Non-2xx responses are returned as *api.Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode %s: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.id != "" {
		req.Header.Set("X-Client-ID", c.id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// decodeError turns an error response into *api.Error, synthesizing an
// envelope when the body is not one (proxies, panics).
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env api.ErrorBody
	if err := json.Unmarshal(b, &env); err == nil && env.Error.Code != "" {
		e := env.Error
		e.HTTPStatus = resp.StatusCode
		return &e
	}
	return &api.Error{
		Code:       api.CodeInternal,
		Message:    fmt.Sprintf("non-envelope error response: %s", strings.TrimSpace(string(b))),
		HTTPStatus: resp.StatusCode,
	}
}

// Health checks GET /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	var h api.HealthBody
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*api.StatsBody, error) {
	var s api.StatsBody
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Ask ranks a question.
func (c *Client) Ask(ctx context.Context, req api.AskRequest) (*api.AskResponse, error) {
	var resp api.AskResponse
	if err := c.do(ctx, http.MethodPost, "/v1/ask", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Vote submits feedback on a served ranking.
func (c *Client) Vote(ctx context.Context, req api.VoteRequest) (*api.VoteResponse, error) {
	var resp api.VoteResponse
	if err := c.do(ctx, http.MethodPost, "/v1/vote", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RetryError is returned by VoteRetry when the caller's context ends the
// retry loop. It carries both halves of the story: the context error
// (errors.Is(err, context.DeadlineExceeded) works) and the last shed
// envelope the server answered with, retry hint included.
type RetryError struct {
	// Last is the final *api.Error the server shed the vote with.
	Last *api.Error
	// Err is the context error that ended the loop.
	Err error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("client: vote retry abandoned (%v): last shed %s with retry_after_ms=%d",
		e.Err, e.Last.Code, e.Last.RetryAfterMS)
}

// Unwrap exposes both the context error and the shed envelope to
// errors.Is / errors.As.
func (e *RetryError) Unwrap() []error { return []error{e.Err, e.Last} }

// VoteRetry submits a vote, retrying sheds (429/503 with a temporary
// code) after the server's Retry-After hint until ctx expires. It is the
// canonical loop a well-behaved client runs against an overloaded server.
//
// Waits never outlive the caller's deadline: when the server's hint
// reaches past it, VoteRetry returns a *RetryError immediately instead of
// idling out the remaining budget on a retry that could never be sent.
func (c *Client) VoteRetry(ctx context.Context, req api.VoteRequest) (*api.VoteResponse, error) {
	for {
		resp, err := c.Vote(ctx, req)
		apiErr, ok := err.(*api.Error)
		if err == nil || !ok || !apiErr.Temporary() {
			return resp, err
		}
		wait := apiErr.RetryAfter()
		if wait <= 0 {
			wait = 100 * time.Millisecond
		}
		if deadline, ok := ctx.Deadline(); ok && wait > time.Until(deadline) {
			return nil, &RetryError{Last: apiErr, Err: context.DeadlineExceeded}
		}
		select {
		case <-ctx.Done():
			return nil, &RetryError{Last: apiErr, Err: ctx.Err()}
		case <-time.After(wait):
		}
	}
}

// AskBatch ranks several questions in one round trip (POST /v1/askbatch).
func (c *Client) AskBatch(ctx context.Context, req api.AskBatchRequest) (*api.AskBatchResponse, error) {
	var resp api.AskBatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/askbatch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain decomposes a ranked score into its graph walks.
func (c *Client) Explain(ctx context.Context, req api.ExplainRequest) (*api.ExplainResponse, error) {
	var resp api.ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/v1/explain", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Flush forces an optimization flush of the pending votes.
func (c *Client) Flush(ctx context.Context) (*api.VoteResponse, error) {
	var resp api.VoteResponse
	if err := c.do(ctx, http.MethodPost, "/v1/flush", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Checkpoint persists a full-state checkpoint now.
func (c *Client) Checkpoint(ctx context.Context) (*api.CheckpointResponse, error) {
	var resp api.CheckpointResponse
	if err := c.do(ctx, http.MethodPost, "/v1/checkpoint", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
