// Package client is a thin HTTP client for the kgvote /v1 API. It speaks
// the DTOs of package api, decodes the uniform error envelope into
// *api.Error (so callers can branch on the machine-readable code and the
// Retry-After hint), and propagates the caller's context deadline to the
// server on every call.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"kgvote/api"
)

// Client talks to one kgvote server. An un-scoped client addresses the
// default tenant through the un-prefixed /v1 routes; Tenant derives a
// handle scoped to one tenant's /v1/t/{tenant} namespace with the same
// method set.
type Client struct {
	base string
	hc   *http.Client
	id   string
	// prefix is the route namespace every call lands under: "/v1" on an
	// un-scoped client, "/v1/t/<tenant>" on a Tenant handle.
	prefix string
	tenant string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithClientID sets the X-Client-ID header sent with every request; the
// server's admission controller uses it as the fairness key (falling back
// to the remote address when absent).
func WithClientID(id string) Option {
	return func(c *Client) { c.id = id }
}

// New returns a client for the server at base (e.g. "http://host:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient, prefix: "/v1"}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Tenant returns a handle scoped to one tenant: every call (Ask, Vote,
// VoteRetry, AskBatch, Explain, Flush, Stats, ...) lands under
// /v1/t/{id} instead of the un-prefixed /v1 routes, which a
// multi-tenant daemon aliases to the default tenant. The handle shares
// the parent's transport and client id; the parent is not mutated.
//
// Scoped requests against a tenant the server does not host fail with
// an *api.Error that errors.As-unwraps to *api.TenantNotFoundError;
// quota sheds unwrap to *api.TenantQuotaError.
func (c *Client) Tenant(id string) *Client {
	scoped := *c
	scoped.prefix = "/v1/t/" + url.PathEscape(id)
	scoped.tenant = id
	return &scoped
}

// TenantID returns the tenant this handle is scoped to ("" for an
// un-scoped client).
func (c *Client) TenantID() string { return c.tenant }

// do issues one request against a /v1 path and decodes the response into
// out (nil = discard). Non-2xx responses are returned as *api.Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode %s: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.id != "" {
		req.Header.Set("X-Client-ID", c.id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// decodeError turns an error response into *api.Error, synthesizing an
// envelope when the body is not one (proxies, panics).
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env api.ErrorBody
	if err := json.Unmarshal(b, &env); err == nil && env.Error.Code != "" {
		e := env.Error
		e.HTTPStatus = resp.StatusCode
		return &e
	}
	return &api.Error{
		Code:       api.CodeInternal,
		Message:    fmt.Sprintf("non-envelope error response: %s", strings.TrimSpace(string(b))),
		HTTPStatus: resp.StatusCode,
	}
}

// Health checks GET /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	var h api.HealthBody
	return c.do(ctx, http.MethodGet, c.prefix+"/healthz", nil, &h)
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*api.StatsBody, error) {
	var s api.StatsBody
	if err := c.do(ctx, http.MethodGet, c.prefix+"/stats", nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Ask ranks a question.
func (c *Client) Ask(ctx context.Context, req api.AskRequest) (*api.AskResponse, error) {
	var resp api.AskResponse
	if err := c.do(ctx, http.MethodPost, c.prefix+"/ask", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Vote submits feedback on a served ranking.
func (c *Client) Vote(ctx context.Context, req api.VoteRequest) (*api.VoteResponse, error) {
	var resp api.VoteResponse
	if err := c.do(ctx, http.MethodPost, c.prefix+"/vote", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RetryError is returned by VoteRetry when the caller's context ends the
// retry loop. It carries both halves of the story: the context error
// (errors.Is(err, context.DeadlineExceeded) works) and the last shed
// envelope the server answered with, retry hint included.
type RetryError struct {
	// Last is the final *api.Error the server shed the vote with.
	Last *api.Error
	// Err is the context error that ended the loop.
	Err error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("client: vote retry abandoned (%v): last shed %s with retry_after_ms=%d",
		e.Err, e.Last.Code, e.Last.RetryAfterMS)
}

// Unwrap exposes both the context error and the shed envelope to
// errors.Is / errors.As.
func (e *RetryError) Unwrap() []error { return []error{e.Err, e.Last} }

// VoteRetry submits a vote, retrying sheds (429/503 with a temporary
// code) after the server's Retry-After hint until ctx expires. It is the
// canonical loop a well-behaved client runs against an overloaded server.
//
// Waits never outlive the caller's deadline: when the server's hint
// reaches past it, VoteRetry returns a *RetryError immediately instead of
// idling out the remaining budget on a retry that could never be sent.
func (c *Client) VoteRetry(ctx context.Context, req api.VoteRequest) (*api.VoteResponse, error) {
	for {
		resp, err := c.Vote(ctx, req)
		apiErr, ok := err.(*api.Error)
		if err == nil || !ok || !apiErr.Temporary() {
			return resp, err
		}
		wait := apiErr.RetryAfter()
		if wait <= 0 {
			wait = 100 * time.Millisecond
		}
		if deadline, ok := ctx.Deadline(); ok && wait > time.Until(deadline) {
			return nil, &RetryError{Last: apiErr, Err: context.DeadlineExceeded}
		}
		select {
		case <-ctx.Done():
			return nil, &RetryError{Last: apiErr, Err: ctx.Err()}
		case <-time.After(wait):
		}
	}
}

// AskBatch ranks several questions in one round trip (POST /v1/askbatch).
func (c *Client) AskBatch(ctx context.Context, req api.AskBatchRequest) (*api.AskBatchResponse, error) {
	var resp api.AskBatchResponse
	if err := c.do(ctx, http.MethodPost, c.prefix+"/askbatch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain decomposes a ranked score into its graph walks.
func (c *Client) Explain(ctx context.Context, req api.ExplainRequest) (*api.ExplainResponse, error) {
	var resp api.ExplainResponse
	if err := c.do(ctx, http.MethodPost, c.prefix+"/explain", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Flush forces an optimization flush of the pending votes.
func (c *Client) Flush(ctx context.Context) (*api.VoteResponse, error) {
	var resp api.VoteResponse
	if err := c.do(ctx, http.MethodPost, c.prefix+"/flush", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Checkpoint persists a full-state checkpoint now.
func (c *Client) Checkpoint(ctx context.Context) (*api.CheckpointResponse, error) {
	var resp api.CheckpointResponse
	if err := c.do(ctx, http.MethodPost, c.prefix+"/checkpoint", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Tenant admin API (POST/GET/DELETE /v1/admin/tenants). The admin
// routes are process-wide, so they ignore any Tenant scoping on the
// handle.

// TenantCreate provisions a new tenant.
func (c *Client) TenantCreate(ctx context.Context, id string) (*api.TenantSummary, error) {
	var resp api.TenantSummary
	if err := c.do(ctx, http.MethodPost, "/v1/admin/tenants", api.TenantCreateRequest{ID: id}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// TenantList lists every hosted tenant, quarantined ones included.
func (c *Client) TenantList(ctx context.Context) (*api.TenantListResponse, error) {
	var resp api.TenantListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/admin/tenants", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// TenantDelete removes a tenant; purge also deletes its durability
// directory (otherwise the WAL survives and the next boot resurrects
// the tenant).
func (c *Client) TenantDelete(ctx context.Context, id string, purge bool) (*api.TenantDeleteResponse, error) {
	path := "/v1/admin/tenants/" + url.PathEscape(id)
	if purge {
		path += "?purge=true"
	}
	var resp api.TenantDeleteResponse
	if err := c.do(ctx, http.MethodDelete, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
