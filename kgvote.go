// Package kgvote optimizes knowledge-graph edge weights through
// voting-based user feedback, reproducing Yang, Lin, Xu, Yang & He,
// "Optimizing Knowledge Graphs through Voting-based User Feedback"
// (ICDE 2020).
//
// The typical flow:
//
//	g := kgvote.NewGraph()
//	// ... add entity nodes and weighted edges ...
//	kg := kgvote.Augment(g)
//	// ... attach answer nodes and query nodes ...
//	eng, _ := kgvote.NewEngine(g, kgvote.DefaultOptions())
//	ranked, _ := eng.Rank(query, answers)
//	v, _ := eng.CollectVote(query, answers, userChoice)
//	eng.SolveMulti([]kgvote.Vote{v}) // re-weight the graph
//
// The facade re-exports the stable surface of the internal packages:
// graph storage (internal/graph), similarity evaluation via the extended
// inverse P-distance (internal/pathidx), the SGP-based optimization engine
// (internal/core), and the vote model (internal/vote). Lower-level pieces
// (the signomial algebra, the augmented-Lagrangian solver, affinity
// propagation) stay internal.
package kgvote

import (
	"kgvote/internal/core"
	"kgvote/internal/graph"
	"kgvote/internal/pathidx"
	"kgvote/internal/qa"
	"kgvote/internal/vote"
)

// Re-exported core types. See the internal packages for full method
// documentation.
type (
	// Graph is a weighted directed knowledge graph.
	Graph = graph.Graph
	// NodeID identifies a node inside one Graph.
	NodeID = graph.NodeID
	// EdgeKey identifies a directed edge by endpoints.
	EdgeKey = graph.EdgeKey
	// Augmented is a knowledge graph with query and answer nodes attached.
	Augmented = graph.Augmented
	// Engine optimizes a knowledge graph from user votes.
	Engine = core.Engine
	// Options configures an Engine; zero fields take the paper defaults.
	Options = core.Options
	// Report summarizes one optimization run.
	Report = core.Report
	// Vote is one unit of user feedback on a ranked answer list.
	Vote = vote.Vote
	// Ranked is one entry of a ranked answer list.
	Ranked = pathidx.Ranked
	// Explanation decomposes one similarity score into its walks.
	Explanation = core.Explanation
	// PathContribution is one walk's share of a similarity score.
	PathContribution = core.PathContribution

	// Corpus, Document, and Question model a Q&A document collection for
	// the question-answering substrate.
	Corpus = qa.Corpus
	// Document is one answer document with entity counts.
	Document = qa.Document
	// Question is one user question with optional ground truth.
	Question = qa.Question
	// QASystem is an assembled Q&A system over a corpus.
	QASystem = qa.System

	// Stream processes votes online in batches.
	Stream = core.Stream
	// StreamSolver selects the batch solver a Stream applies.
	StreamSolver = core.StreamSolver
	// WeightSnapshot captures edge weights for rollback.
	WeightSnapshot = core.WeightSnapshot
)

// Stream batch solvers.
const (
	// StreamMulti applies the multi-vote solution per batch.
	StreamMulti = core.StreamMulti
	// StreamSplitMerge applies split-and-merge per batch.
	StreamSplitMerge = core.StreamSplitMerge
	// StreamSingle applies the single-vote solution per batch.
	StreamSingle = core.StreamSingle
)

// Vote kinds.
const (
	// Negative marks a vote whose best answer is not ranked first.
	Negative = vote.Negative
	// Positive confirms the top-ranked answer.
	Positive = vote.Positive
)

// None is the invalid NodeID.
const None = graph.None

// NewGraph returns an empty graph with a capacity hint.
func NewGraph() *Graph { return graph.New(0) }

// NewGraphWithCapacity returns an empty graph pre-sized for n nodes.
func NewGraphWithCapacity(n int) *Graph { return graph.New(n) }

// Augment wraps a graph for query/answer node attachment.
func Augment(g *Graph) *Augmented { return graph.Augment(g) }

// DefaultOptions returns the paper's parameter settings (c = 0.15, L = 5,
// k = 20, λ₁ = λ₂ = 0.5, w = 300).
func DefaultOptions() Options { return core.Defaults() }

// NewEngine returns an optimization engine over g. The engine mutates g
// in place as votes are applied; clone first to preserve the original.
func NewEngine(g *Graph, opt Options) (*Engine, error) { return core.New(g, opt) }

// NewVote builds a vote from a ranked list and the user's best choice,
// inferring positive/negative from the choice's position.
func NewVote(query NodeID, ranked []NodeID, best NodeID) (Vote, error) {
	return vote.FromRanking(query, ranked, best)
}

// BuildQA assembles a Q&A system (co-occurrence knowledge graph + answer
// nodes + engine) from a document corpus.
func BuildQA(c *Corpus, opt Options) (*QASystem, error) { return qa.Build(c, opt) }

// ExtractEntities tokenizes text and keeps entities in the vocabulary,
// counting occurrences.
func ExtractEntities(text string, vocabulary map[string]bool) map[string]int {
	return qa.ExtractEntities(text, vocabulary)
}
