// Quickstart: build the paper's Fig. 1 knowledge graph, ask a question,
// cast one vote, and watch the ranking flip.
package main

import (
	"fmt"
	"log"

	"kgvote"
)

func main() {
	// Fig. 1(a): the customer-support knowledge graph.
	g := kgvote.NewGraph()
	stuck := g.AddNode("Stuck")
	outlook := g.AddNode("Outlook")
	email := g.AddNode("Email")
	outbox := g.AddNode("Outbox")
	send := g.AddNode("SendMessage")
	g.MustSetEdge(stuck, outbox, 0.8)
	g.MustSetEdge(outbox, email, 0.3)
	g.MustSetEdge(outbox, send, 0.5)
	g.MustSetEdge(email, outbox, 0.4)
	g.MustSetEdge(email, send, 0.6)
	g.MustSetEdge(send, outlook, 0.3)

	// Attach the answer documents and the user's question.
	kg := kgvote.Augment(g)
	a1, err := kg.AttachAnswerUniform("a1: clear your outbox", []kgvote.NodeID{outbox})
	check(err)
	a2, err := kg.AttachAnswerUniform("a2: resend the email", []kgvote.NodeID{send})
	check(err)
	a3, err := kg.AttachAnswerUniform("a3: reconfigure Outlook", []kgvote.NodeID{outlook})
	check(err)
	q, err := kg.AttachQuery("my email is stuck", []kgvote.NodeID{stuck, outlook, email}, []float64{1, 1, 1})
	check(err)

	eng, err := kgvote.NewEngine(g, kgvote.DefaultOptions())
	check(err)
	answers := []kgvote.NodeID{a1, a2, a3}

	ranked, err := eng.Rank(q, answers)
	check(err)
	fmt.Println("before the vote:")
	for i, r := range ranked {
		fmt.Printf("  %d. %-26s score %.6f\n", i+1, g.Name(r.Node), r.Score)
	}

	// The user finds a2 most helpful even though it is not ranked first.
	v, err := eng.CollectVote(q, answers, a2)
	check(err)
	fmt.Printf("\nuser votes %q as best (a %v vote)\n\n", g.Name(a2), v.Kind)
	rep, err := eng.SolveMulti([]kgvote.Vote{v})
	check(err)
	fmt.Printf("optimized: %d constraints, %d satisfied, %d edge weights changed\n\n",
		rep.Constraints, rep.Satisfied, rep.ChangedEdges)

	ranked, err = eng.Rank(q, answers)
	check(err)
	fmt.Println("after the vote:")
	for i, r := range ranked {
		fmt.Printf("  %d. %-26s score %.6f\n", i+1, g.Name(r.Node), r.Score)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
