// E-commerce recommendation (Example 1 of the paper): products live in a
// co-purchase knowledge graph; the shop recommends related products for a
// query. When customers keep buying a product that is NOT ranked first in
// the recommendation list, those purchases are implicit negative votes,
// and the graph is re-weighted so the actually-bought product rises.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kgvote"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Co-purchase graph: categories of products with co-purchase strengths.
	g := kgvote.NewGraph()
	products := []string{
		"laptop", "laptop-sleeve", "usb-c-hub", "monitor", "hdmi-cable",
		"mechanical-keyboard", "mouse", "desk-lamp", "webcam", "microphone",
	}
	ids := make(map[string]kgvote.NodeID, len(products))
	for _, p := range products {
		ids[p] = g.AddNode(p)
	}
	copurchase := func(a, b string, w float64) {
		g.MustSetEdge(ids[a], ids[b], w)
		g.MustSetEdge(ids[b], ids[a], w)
	}
	copurchase("laptop", "laptop-sleeve", 0.5)
	copurchase("laptop", "usb-c-hub", 0.3)
	copurchase("laptop", "monitor", 0.2)
	copurchase("monitor", "hdmi-cable", 0.6)
	copurchase("monitor", "desk-lamp", 0.1)
	copurchase("mechanical-keyboard", "mouse", 0.5)
	copurchase("usb-c-hub", "hdmi-cable", 0.3)
	copurchase("webcam", "microphone", 0.6)
	copurchase("laptop", "webcam", 0.15)

	// Recommendation slots are answer nodes: one per promotable product.
	kg := kgvote.Augment(g)
	slots := make(map[string]kgvote.NodeID)
	var answers []kgvote.NodeID
	for _, p := range []string{"laptop-sleeve", "usb-c-hub", "monitor", "hdmi-cable", "webcam", "microphone"} {
		slot, err := kg.AttachAnswerUniform("buy:"+p, []kgvote.NodeID{ids[p]})
		check(err)
		slots[p] = slot
		answers = append(answers, slot)
	}

	// A customer lands on the laptop page: that page is the query.
	q, err := kg.AttachQuery("viewing:laptop", []kgvote.NodeID{ids["laptop"]}, []float64{1})
	check(err)

	opts := kgvote.DefaultOptions()
	opts.K = 6
	eng, err := kgvote.NewEngine(g, opts)
	check(err)

	show := func(label string) []kgvote.NodeID {
		ranked, err := eng.Rank(q, answers)
		check(err)
		fmt.Println(label)
		list := make([]kgvote.NodeID, len(ranked))
		for i, r := range ranked {
			list[i] = r.Node
			fmt.Printf("  %d. %-20s %.6f\n", i+1, g.Name(r.Node), r.Score)
		}
		return list
	}
	list := show("recommendations on the laptop page:")

	// Simulate a week of purchases: customers on the laptop page mostly buy
	// the USB-C hub (ranked below the sleeve), occasionally the top slot.
	var votes []kgvote.Vote
	for i := 0; i < 12; i++ {
		bought := slots["usb-c-hub"]
		if rng.Float64() < 0.25 {
			bought = list[0] // implicit positive vote
		}
		v, err := kgvote.NewVote(q, list, bought)
		check(err)
		votes = append(votes, v)
	}
	neg := 0
	for _, v := range votes {
		if v.Kind == kgvote.Negative {
			neg++
		}
	}
	fmt.Printf("\nobserved %d purchases: %d implicit negative votes, %d positive\n\n", len(votes), neg, len(votes)-neg)

	rep, err := eng.SolveMulti(votes)
	check(err)
	fmt.Printf("multi-vote optimization: %d/%d constraints satisfied, %d edges changed\n\n",
		rep.Satisfied, rep.Constraints, rep.ChangedEdges)

	show("recommendations after learning from purchases:")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
