// Web search with click-through feedback (Example 2 of the paper): a
// search engine ranks pages by similarity over a concept knowledge graph;
// users' clicks on results are implicit votes. Clicks on lower-ranked
// results re-weight the graph so future searches rank those pages higher.
package main

import (
	"fmt"
	"log"

	"kgvote"
)

type page struct {
	title    string
	concepts []string
}

func main() {
	// Concept graph distilled from a crawl: nodes are concepts, edges are
	// co-reference strengths between concepts.
	g := kgvote.NewGraph()
	concepts := []string{
		"golang", "concurrency", "goroutine", "channel", "mutex",
		"scheduler", "garbage-collection", "performance", "profiling",
	}
	ids := make(map[string]kgvote.NodeID)
	for _, c := range concepts {
		ids[c] = g.AddNode(c)
	}
	link := func(a, b string, w float64) { g.MustSetEdge(ids[a], ids[b], w) }
	link("golang", "concurrency", 0.4)
	link("golang", "garbage-collection", 0.2)
	link("golang", "performance", 0.2)
	link("concurrency", "goroutine", 0.5)
	link("concurrency", "channel", 0.3)
	link("concurrency", "mutex", 0.2)
	link("goroutine", "scheduler", 0.4)
	link("goroutine", "channel", 0.3)
	link("performance", "profiling", 0.6)
	link("garbage-collection", "performance", 0.3)
	link("scheduler", "performance", 0.2)
	link("channel", "goroutine", 0.3)
	link("mutex", "performance", 0.2)

	pages := []page{
		{"Go Concurrency Patterns", []string{"concurrency", "goroutine", "channel"}},
		{"Understanding the Go Scheduler", []string{"scheduler", "goroutine"}},
		{"Profiling Go Programs", []string{"profiling", "performance"}},
		{"Mutexes vs Channels", []string{"mutex", "channel", "concurrency"}},
		{"GC Tuning Guide", []string{"garbage-collection", "performance"}},
	}

	kg := kgvote.Augment(g)
	var results []kgvote.NodeID
	for _, p := range pages {
		ents := make([]kgvote.NodeID, len(p.concepts))
		counts := make([]float64, len(p.concepts))
		for i, c := range p.concepts {
			ents[i] = ids[c]
			counts[i] = 1
		}
		r, err := kg.AttachAnswer(p.title, ents, counts)
		check(err)
		results = append(results, r)
	}

	// The search query "golang concurrency" becomes a query node.
	q, err := kg.AttachQuery("golang concurrency",
		[]kgvote.NodeID{ids["golang"], ids["concurrency"]}, []float64{1, 1})
	check(err)

	opts := kgvote.DefaultOptions()
	opts.K = 5
	eng, err := kgvote.NewEngine(g, opts)
	check(err)

	serp := func(label string) []kgvote.NodeID {
		ranked, err := eng.Rank(q, results)
		check(err)
		fmt.Println(label)
		list := make([]kgvote.NodeID, len(ranked))
		for i, r := range ranked {
			list[i] = r.Node
			fmt.Printf("  %d. %-32s %.6f\n", i+1, g.Name(r.Node), r.Score)
		}
		fmt.Println()
		return list
	}
	list := serp("search results for \"golang concurrency\":")

	// Click log: most users skip the top result and click "Understanding
	// the Go Scheduler" — an implicit negative vote each time.
	clicked := results[1]
	var votes []kgvote.Vote
	for i := 0; i < 8; i++ {
		v, err := kgvote.NewVote(q, list, clicked)
		check(err)
		votes = append(votes, v)
	}
	fmt.Printf("click log: %d clicks on %q (rank %d)\n\n", len(votes), g.Name(clicked), votes[0].BestRank())

	rep, err := eng.SolveSplitMerge(votes)
	check(err)
	fmt.Printf("split-and-merge optimization: %d clusters, %d/%d constraints satisfied, %d edges changed\n\n",
		rep.Clusters, rep.Satisfied, rep.Constraints, rep.ChangedEdges)

	serp("search results after learning from clicks:")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
