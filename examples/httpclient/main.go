// Talking to the kgvote HTTP service through the public api/client
// package: ask → vote with typed request/response bodies, branching on
// the uniform error envelope when the server sheds load, retrying with
// the Retry-After hint, and watching a graceful drain reject writes
// while reads keep serving. See API.md for the wire contract.
//
// The server runs in-process on an httptest listener so the example is
// self-contained; point client.New at a real kgvoted address in
// production.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"kgvote"
	"kgvote/api"
	"kgvote/api/client"
	"kgvote/internal/admit"
	"kgvote/internal/core"
	"kgvote/internal/server"
)

func main() {
	corpus := &kgvote.Corpus{Docs: []kgvote.Document{
		{ID: 0, Title: "Track your parcel", Entities: map[string]int{"parcel": 2, "tracking": 2, "delivery": 1}},
		{ID: 1, Title: "Late delivery compensation", Entities: map[string]int{"delivery": 2, "late": 2, "refund": 1}},
		{ID: 2, Title: "Request a refund", Entities: map[string]int{"refund": 2, "payment": 2, "order": 1}},
		{ID: 3, Title: "Cancel an order", Entities: map[string]int{"order": 2, "cancel": 2, "payment": 1}},
	}}
	opts := kgvote.DefaultOptions()
	opts.K = 4
	sys, err := kgvote.BuildQA(corpus, opts)
	check(err)

	// A deliberately tiny admission queue (capacity 2) with a large batch,
	// so the third vote is shed and the overload path is easy to see.
	srv, err := server.NewWithOptions(sys, server.Options{
		BatchSize: 100,
		Solver:    core.StreamMulti,
		Admission: admit.Config{Capacity: 2},
	})
	check(err)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx := context.Background()
	cl := client.New(ts.URL, client.WithClientID("example-client"))

	// Ask: typed request in, typed ranking out, plus the opaque query
	// handle the follow-up vote needs.
	ask, err := cl.Ask(ctx, api.AskRequest{Entities: map[string]int{"delivery": 2, "refund": 1}})
	check(err)
	fmt.Println("ranked answers:")
	for i, r := range ask.Results {
		fmt.Printf("  %d. %-28s %.4f\n", i+1, r.Title, r.Score)
	}

	// Vote: the user actually wanted "Request a refund".
	ranked := make([]int, len(ask.Results))
	best := ask.Results[0].Doc
	for i, r := range ask.Results {
		ranked[i] = r.Doc
		if r.Title == "Request a refund" {
			best = r.Doc
		}
	}
	vr, err := cl.Vote(ctx, api.VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: best})
	check(err)
	fmt.Printf("vote accepted: pending=%d flushed=%v\n", vr.Pending, vr.Flushed)

	// Flood past capacity: the envelope's machine-readable code says
	// exactly why each vote was refused, and Retry-After says when to
	// come back. errors.As is the branching idiom.
	for i := 0; i < 3; i++ {
		a2, err := cl.Ask(ctx, api.AskRequest{Entities: map[string]int{"parcel": 1, "order": 1}})
		check(err)
		_, err = cl.Vote(ctx, api.VoteRequest{Query: a2.Query, Ranked: ranked, BestDoc: ranked[0]})
		var apiErr *api.Error
		switch {
		case err == nil:
			fmt.Printf("vote %d admitted\n", i+2)
		case errors.As(err, &apiErr):
			fmt.Printf("vote %d shed: code=%s retry_after=%s temporary=%v\n",
				i+2, apiErr.Code, apiErr.RetryAfter(), apiErr.Temporary())
		default:
			check(err)
		}
	}

	st, err := cl.Stats(ctx)
	check(err)
	fmt.Printf("admission: capacity=%d admitted=%d shed=%d\n",
		st.Admission.QueueCapacity, st.Admission.Admitted, st.Admission.Shed)

	// Graceful drain: writes are refused with code "draining", reads keep
	// serving from the snapshot until the process exits.
	srv.BeginDrain()
	_, err = cl.Vote(ctx, api.VoteRequest{Query: ask.Query, Ranked: ranked, BestDoc: best})
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		fmt.Printf("during drain, vote: code=%s\n", apiErr.Code)
	}
	if _, err := cl.Ask(ctx, api.AskRequest{Entities: map[string]int{"refund": 1}}); err == nil {
		fmt.Println("during drain, ask: still serving")
	}
	check(srv.Drain(ctx))
	fmt.Println("drained: every admitted vote solved")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
