// Customer-service Q&A (the paper's primary scenario): build a knowledge
// graph from a HELP-document corpus, answer free-text questions over it,
// collect votes from users who know which document actually helped, and
// compare single-vote vs multi-vote optimization on a held-out test set —
// a miniature of the paper's Tables IV and V.
package main

import (
	"fmt"
	"log"

	"kgvote"
)

func main() {
	corpus := &kgvote.Corpus{Docs: []kgvote.Document{
		{ID: 0, Title: "Email stuck in outbox", Entities: map[string]int{"email": 2, "outbox": 2, "send": 1}},
		{ID: 1, Title: "Configure Outlook account", Entities: map[string]int{"outlook": 2, "account": 2, "email": 1}},
		{ID: 2, Title: "Recover deleted messages", Entities: map[string]int{"message": 2, "trash": 2, "recover": 1}},
		{ID: 3, Title: "Change account password", Entities: map[string]int{"account": 2, "password": 2, "login": 1}},
		{ID: 4, Title: "Two-factor login setup", Entities: map[string]int{"login": 2, "password": 1, "phone": 2}},
		{ID: 5, Title: "Sync email on phone", Entities: map[string]int{"email": 1, "phone": 2, "sync": 2}},
		{ID: 6, Title: "Message delivery delays", Entities: map[string]int{"message": 2, "send": 2, "delay": 1}},
		{ID: 7, Title: "Empty trash automatically", Entities: map[string]int{"trash": 2, "delete": 2, "message": 1}},
	}}

	opts := kgvote.DefaultOptions()
	opts.K = 5
	sys, err := kgvote.BuildQA(corpus, opts)
	check(err)
	fmt.Printf("built KG: %d entities, %d edges, %d documents\n\n",
		sys.Aug.Entities, sys.Aug.NumEdges(), len(sys.Answers()))

	ask := func(text string) (kgvote.NodeID, []kgvote.NodeID) {
		ents := kgvote.ExtractEntities(text, sys.Vocabulary())
		qn, ranked, err := sys.Ask(kgvote.Question{ID: -1, Entities: ents})
		check(err)
		fmt.Printf("Q: %s\n", text)
		for i, a := range ranked {
			doc := corpus.Docs[sys.DocOf(a)]
			fmt.Printf("  %d. %s\n", i+1, doc.Title)
		}
		return qn, ranked
	}

	// A user asks about email that won't send. The system leads with the
	// outbox document, but what actually helped was "delivery delays".
	qn, ranked := ask("my email will not send")
	v, err := sys.VoteBest(qn, ranked, 6)
	check(err)
	fmt.Printf("user votes doc #6 (%q) best — a %v vote at rank %d\n\n",
		corpus.Docs[6].Title, v.Kind, v.BestRank())

	// A second user confirms the top answer for a different question.
	qn2, ranked2 := ask("how do I change my password")
	v2, err := sys.VoteBest(qn2, ranked2, sys.DocOf(ranked2[0]))
	check(err)
	fmt.Printf("user confirms the top answer — a %v vote\n\n", v2.Kind)

	rep, err := sys.Engine.SolveMulti([]kgvote.Vote{v, v2})
	check(err)
	fmt.Printf("multi-vote optimization: %d/%d constraints satisfied, %d edges changed\n\n",
		rep.Satisfied, rep.Constraints, rep.ChangedEdges)

	// The same question now surfaces the right document first.
	qn3, ranked3 := ask("my email will not send")

	// Interpretability: decompose the winning similarity into its walks
	// through the knowledge graph (the paper's pitch against opaque
	// end-to-end rankers).
	ex, err := sys.Engine.Explain(qn3, ranked3[0], 3)
	check(err)
	fmt.Println()
	fmt.Print(ex.Format(sys.Aug.Graph))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
