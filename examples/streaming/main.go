// Online deployment loop: votes arrive continuously from users of mixed
// credibility; the engine re-optimizes the knowledge graph per batch, a
// snapshot guards every batch so a harmful one can be rolled back, and
// walk-level explanations show why the final ranking is what it is.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kgvote"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	corpus := &kgvote.Corpus{Docs: []kgvote.Document{
		{ID: 0, Title: "Track your parcel", Entities: map[string]int{"parcel": 2, "tracking": 2, "delivery": 1}},
		{ID: 1, Title: "Late delivery compensation", Entities: map[string]int{"delivery": 2, "late": 2, "refund": 1}},
		{ID: 2, Title: "Request a refund", Entities: map[string]int{"refund": 2, "payment": 2, "order": 1}},
		{ID: 3, Title: "Cancel an order", Entities: map[string]int{"order": 2, "cancel": 2, "payment": 1}},
		{ID: 4, Title: "Change delivery address", Entities: map[string]int{"delivery": 2, "address": 2, "parcel": 1}},
	}}
	opts := kgvote.DefaultOptions()
	opts.K = 5
	sys, err := kgvote.BuildQA(corpus, opts)
	check(err)

	// Batch every 3 votes, re-optimizing with the multi-vote solution.
	stream, err := sys.Engine.NewStream(3, kgvote.StreamMulti)
	check(err)

	ask := func(text string) (kgvote.NodeID, []kgvote.NodeID) {
		ents := kgvote.ExtractEntities(text, sys.Vocabulary())
		qn, ranked, err := sys.Ask(kgvote.Question{ID: -1, Entities: ents})
		check(err)
		return qn, ranked
	}

	// The support team knows doc 1 answers "my delivery is late" best, but
	// the graph initially leads with something else. Users keep voting.
	queries := []string{
		"my delivery is late",
		"late delivery of my parcel",
		"delivery late want refund",
		"my delivery is late",
		"parcel delivery late",
		"late delivery help",
	}
	snap := sys.Engine.Snapshot()
	for i, text := range queries {
		qn, ranked := ask(text)
		best, err := sys.AnswerOf(1)
		check(err)
		// Is doc 1 in the list? Vote it best; trusted agents (every third
		// user) carry triple weight.
		inList := false
		for _, a := range ranked {
			if a == best {
				inList = true
				break
			}
		}
		if !inList {
			continue
		}
		v, err := kgvote.NewVote(qn, ranked, best)
		check(err)
		if i%3 == 0 {
			v.Weight = 3 // a support agent's vote
		} else {
			v.Weight = 0.5 + rng.Float64() // ordinary users
		}
		rep, err := stream.Push(v)
		check(err)
		if rep != nil {
			fmt.Printf("batch flushed: %d votes, %d/%d constraints satisfied, %d edges changed\n",
				rep.Votes, rep.Satisfied, rep.Constraints, rep.ChangedEdges)
		}
	}
	if rep, err := stream.Flush(); err != nil {
		log.Fatal(err)
	} else if rep != nil {
		fmt.Printf("final flush: %d votes\n", rep.Votes)
	}

	qn, ranked := ask("my delivery is late")
	fmt.Println("\nranking after the vote stream:")
	for i, a := range ranked {
		fmt.Printf("  %d. %s\n", i+1, corpus.Docs[sys.DocOf(a)].Title)
	}

	changed := sys.Engine.Diff(snap, 1e-6)
	fmt.Printf("\n%d edge weights moved since the snapshot\n", len(changed))

	best, err := sys.AnswerOf(sys.DocOf(ranked[0]))
	check(err)
	ex, err := sys.Engine.Explain(qn, best, 3)
	check(err)
	fmt.Println("\nwhy the top answer wins:")
	fmt.Print(ex.Format(sys.Aug.Graph))

	// Suppose offline metrics said this batch hurt: roll it all back.
	check(sys.Engine.Restore(snap))
	fmt.Printf("\nrolled back: %d edges still differ from the snapshot\n", len(sys.Engine.Diff(snap, 1e-9)))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
