package kgvote

import (
	"testing"
)

// TestFacadeEndToEnd drives the public API exactly as the package doc
// describes: build a graph, rank, vote, optimize, re-rank.
func TestFacadeEndToEnd(t *testing.T) {
	g := NewGraph()
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	y := g.AddNode("y")
	g.MustSetEdge(q, a, 0.6)
	g.MustSetEdge(q, b, 0.4)
	g.MustSetEdge(a, x, 1)
	g.MustSetEdge(b, y, 1)

	eng, err := NewEngine(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	answers := []NodeID{x, y}
	ranked, err := eng.Rank(q, answers)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Node != x {
		t.Fatalf("expected x first, got %v", ranked)
	}
	v, err := eng.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != Negative {
		t.Fatalf("expected negative vote")
	}
	rep, err := eng.SolveMulti([]Vote{v})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Encoded != 1 {
		t.Errorf("report = %+v", rep)
	}
	after, err := eng.Rank(q, answers)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].Node != y {
		t.Errorf("vote did not flip the ranking: %v", after)
	}
}

func TestFacadeQA(t *testing.T) {
	c := &Corpus{Docs: []Document{
		{ID: 1, Entities: map[string]int{"email": 2, "outbox": 1}},
		{ID: 2, Entities: map[string]int{"email": 1, "outlook": 1}},
	}}
	sys, err := BuildQA(c, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ents := ExtractEntities("my EMAIL is stuck in the outbox", sys.Vocabulary())
	if ents["email"] != 1 || ents["outbox"] != 1 {
		t.Fatalf("extraction = %v", ents)
	}
	qn, ranked, err := sys.Ask(Question{ID: 1, Entities: ents})
	if err != nil {
		t.Fatal(err)
	}
	if qn == None || len(ranked) == 0 {
		t.Fatalf("ask failed: %v %v", qn, ranked)
	}
	if sys.DocOf(ranked[0]) != 1 {
		t.Errorf("doc1 should rank first for an outbox question")
	}
}

func TestFacadeVoteConstructor(t *testing.T) {
	v, err := NewVote(1, []NodeID{10, 11}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != Negative || v.BestRank() != 2 {
		t.Errorf("vote = %+v", v)
	}
	if _, err := NewVote(1, []NodeID{10}, 99); err == nil {
		t.Errorf("invalid vote should fail")
	}
}

func TestFacadeAugment(t *testing.T) {
	g := NewGraphWithCapacity(8)
	e1 := g.AddNode("e1")
	aug := Augment(g)
	ans, err := aug.AttachAnswerUniform("a", []NodeID{e1})
	if err != nil {
		t.Fatal(err)
	}
	if !aug.IsAnswer(ans) {
		t.Errorf("answer classification lost through facade")
	}
	if DefaultOptions().K != 20 {
		t.Errorf("default K = %d", DefaultOptions().K)
	}
}

func TestFacadeStreamAndSnapshot(t *testing.T) {
	g := NewGraph()
	q := g.AddNode("q")
	a := g.AddNode("a")
	b := g.AddNode("b")
	x := g.AddNode("x")
	y := g.AddNode("y")
	g.MustSetEdge(q, a, 0.6)
	g.MustSetEdge(q, b, 0.4)
	g.MustSetEdge(a, x, 1)
	g.MustSetEdge(b, y, 1)
	eng, err := NewEngine(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	st, err := eng.NewStream(1, StreamMulti)
	if err != nil {
		t.Fatal(err)
	}
	answers := []NodeID{x, y}
	v, err := eng.CollectVote(q, answers, y)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.Push(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatalf("batch=1 should flush immediately")
	}
	if len(eng.Diff(snap, 1e-9)) == 0 {
		t.Errorf("stream flush changed nothing")
	}
	if err := eng.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(eng.Diff(snap, 1e-9)) != 0 {
		t.Errorf("restore incomplete")
	}
}
