GO ?= go

.PHONY: all build test short race vet bench bench-serve experiments clean

all: vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# Serving-path benchmark: legacy serialized ask vs lock-free snapshot
# ranking. Writes qps, p50/p99 latency, and allocs/op to BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/benchserve -out BENCH_serve.json
	$(GO) test -run xxx -bench 'BenchmarkAsk|BenchmarkSnapshotScoring' -benchmem .

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
