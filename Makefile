GO ?= go

.PHONY: all build test short race race-telemetry vet bench bench-serve bench-flush bench-farm bench-cluster farm-smoke cluster-smoke metrics-smoke overload-smoke scenario-smoke ppr-smoke bench-ppr drain-smoke tenant-smoke bench-tenants experiments clean

all: vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

# Race-check the instrumentation hot paths at full depth: counters and
# histograms hammered concurrently with scrapes, instrumented handlers.
race-telemetry:
	$(GO) test -race ./internal/telemetry/... ./internal/server/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

# Serving-path benchmark: legacy serialized ask vs lock-free snapshot
# ranking. Writes qps, p50/p99 latency, and allocs/op to BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/benchserve -out BENCH_serve.json
	$(GO) test -run xxx -bench 'BenchmarkAsk|BenchmarkSnapshotScoring' -benchmem .

# Flush-path benchmark: one 64-vote split-and-merge flush through the
# legacy path (no enumeration cache, one worker) vs the cached parallel
# pipeline. Appends a timestamped run to BENCH_flush.json.
bench-flush:
	$(GO) run ./cmd/benchserve -flush -flushout BENCH_flush.json

# Farm benchmark (DESIGN.md §13): the flush benchmark plus a pass that
# dispatches the per-cluster solves to 4 spawned worker processes,
# asserts bitwise-identical weights, and SIGKILLs one worker mid-flush.
# Appends the farm numbers alongside the flush run in BENCH_flush.json.
bench-farm:
	$(GO) run ./cmd/benchserve -flush -farm-workers 4 -flushout BENCH_flush.json

# Solve-farm smoke: unit + golden determinism tests (in-process workers),
# then the end-to-end test against real kgsolved processes, including
# SIGKILL of a worker between flushes.
farm-smoke:
	$(GO) test ./internal/solvefarm/
	$(GO) test -v -run 'TestFarmEndToEnd' ./cmd/kgsolved/

# Sharded-serving smoke (DESIGN.md §14): the in-process cluster suite —
# router merge bit-identical to a single-process oracle for N ∈ {1,2,4},
# partial degradation, replica convergence, misroute rejection — then
# the process-level test: 3 shard writers + 1 replica + router, SIGKILL
# one writer under load, assert partial answers, restart it, and assert
# WAL recovery and rejoin.
cluster-smoke:
	$(GO) test ./internal/shard/
	$(GO) test -v -run 'TestClusterEndToEnd' ./cmd/kgrouter/

# Sharded-serving benchmark: single-process vs routed vs replica-fanned
# ask throughput, merge-determinism and degradation checks included.
# Appends the run (with go/host provenance) to BENCH_serve.json.
bench-cluster:
	$(GO) run ./cmd/benchserve -cluster 3 -cluster-replicas 1 -out BENCH_serve.json

# Boot the real daemon, drive traffic, and validate GET /metrics against
# the strict exposition checker (internal/telemetry/parse.go).
metrics-smoke:
	$(GO) test -v -run 'TestMetricsEndToEnd' ./cmd/kgvoted/

# Overload smoke (DESIGN.md §12): flood /v1/vote far past the admission
# queue's capacity and verify the contract — exactly capacity admitted,
# everything else shed with 429 + Retry-After, /v1/ask responsive
# throughout, live heap bounded. Exits non-zero on any violation.
overload-smoke:
	$(GO) run ./cmd/benchserve -overload -overload-out BENCH_overload.json

# Adversarial-workload smoke (DESIGN.md §15): replay the spam-flood and
# colluding-ring scenarios with reputation quarantine on vs off and
# verify held-out ranking quality holds with the tracker and demonstrably
# degrades without it. Appends the run to BENCH_serve.json; exits
# non-zero on any ranking-quality violation.
scenario-smoke:
	$(GO) run ./cmd/benchserve -scenarios -scenario-docs 40 -scenario-train 20 -scenario-test 20 -scenario-include spam-flood,colluding-ring -out BENCH_serve.json

# Incremental-scorer smoke (DESIGN.md §16): the push/repair differential
# suite under the race detector, then the enum-vs-push benchmark across
# two Twitter scales. The bench self-asserts the certified error bound,
# pushes > 0, the ≥5x per-flush speedup floor on the larger profile, and
# near-flat push update cost as |E| grows; exits non-zero on violation.
ppr-smoke:
	$(GO) test -race ./internal/ppr/ ./internal/pathidx/ ./internal/core/
	$(GO) run ./cmd/benchserve -ppr -out BENCH_serve.json

bench-ppr:
	$(GO) run ./cmd/benchserve -ppr -out BENCH_serve.json

# Graceful-drain smoke: SIGTERM the real daemon with votes queued and
# mid-flight, restart it, and require every admitted vote to survive.
drain-smoke:
	$(GO) test -v -run 'TestDrain' ./cmd/kgvoted/

# Multi-tenant smoke (DESIGN.md §17): the registry suite (routing,
# golden bitwise isolation, quota shed codes, boot quarantine, purge
# semantics, API.md drift), the e2e test that SIGKILLs a 3-tenant daemon
# and requires independent per-WAL recovery, then the isolation bench in
# smoke mode — flood one tenant past its quota, assert quota-exact
# tenant_quota_exceeded sheds, bounded co-resident ask p95, and zero
# bitwise weight leakage. Exits non-zero on any violation.
tenant-smoke:
	$(GO) test ./internal/tenant/
	$(GO) test -v -run 'TestTenantCrashRecoveryEndToEnd' ./cmd/kgvoted/
	$(GO) run ./cmd/benchserve -tenants 3 -docs 40 -tenant-cap 4 -tenant-flood 200 -tenant-asks 100 -out ""

# Tenant isolation bench at full scale; appends a run to BENCH_serve.json.
bench-tenants:
	$(GO) run ./cmd/benchserve -tenants 4 -tenant-flood 3000 -tenant-asks 1000 -out BENCH_serve.json

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
