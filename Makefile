GO ?= go

.PHONY: all build test short race vet bench experiments clean

all: vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
