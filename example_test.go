package kgvote_test

import (
	"fmt"

	"kgvote"
)

// Example builds the paper's Fig. 1 scenario: a vote for a lower-ranked
// answer re-weights the graph so that answer ranks first.
func Example() {
	g := kgvote.NewGraph()
	q := g.AddNode("question")
	a := g.AddNode("topicA")
	b := g.AddNode("topicB")
	x := g.AddNode("answerX")
	y := g.AddNode("answerY")
	g.MustSetEdge(q, a, 0.6)
	g.MustSetEdge(q, b, 0.4)
	g.MustSetEdge(a, x, 1)
	g.MustSetEdge(b, y, 1)

	eng, err := kgvote.NewEngine(g, kgvote.DefaultOptions())
	if err != nil {
		panic(err)
	}
	answers := []kgvote.NodeID{x, y}
	ranked, _ := eng.Rank(q, answers)
	fmt.Println("top answer before:", g.Name(ranked[0].Node))

	v, _ := eng.CollectVote(q, answers, y) // the user preferred answerY
	if _, err := eng.SolveMulti([]kgvote.Vote{v}); err != nil {
		panic(err)
	}
	ranked, _ = eng.Rank(q, answers)
	fmt.Println("top answer after: ", g.Name(ranked[0].Node))
	// Output:
	// top answer before: answerX
	// top answer after:  answerY
}

// ExampleBuildQA assembles a Q&A system from a document corpus and asks a
// free-text question.
func ExampleBuildQA() {
	corpus := &kgvote.Corpus{Docs: []kgvote.Document{
		{ID: 1, Title: "Reset your password", Entities: map[string]int{"password": 2, "reset": 1}},
		{ID: 2, Title: "Update billing info", Entities: map[string]int{"billing": 2, "card": 1}},
	}}
	sys, err := kgvote.BuildQA(corpus, kgvote.Options{K: 2})
	if err != nil {
		panic(err)
	}
	ents := kgvote.ExtractEntities("how do I reset my password?", sys.Vocabulary())
	_, ranked, err := sys.Ask(kgvote.Question{ID: 1, Entities: ents})
	if err != nil {
		panic(err)
	}
	fmt.Println("best doc:", sys.DocOf(ranked[0]))
	// Output:
	// best doc: 1
}

// ExampleEngine_Explain decomposes a similarity score into its knowledge
// graph walks.
func ExampleEngine_Explain() {
	g := kgvote.NewGraph()
	q := g.AddNode("q")
	mid := g.AddNode("mid")
	ans := g.AddNode("ans")
	g.MustSetEdge(q, mid, 0.5)
	g.MustSetEdge(mid, ans, 0.8)

	eng, err := kgvote.NewEngine(g, kgvote.DefaultOptions())
	if err != nil {
		panic(err)
	}
	ex, err := eng.Explain(q, ans, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d walk(s), top fraction %.0f%%\n", ex.TotalPaths, 100*ex.Paths[0].Fraction)
	// Output:
	// 1 walk(s), top fraction 100%
}
