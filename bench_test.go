// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md §4 for the experiment index). Each benchmark runs the
// corresponding harness experiment at a reduced, fixed-seed scale so that
// `go test -bench=. -benchmem` finishes in minutes; cmd/experiments
// -paper runs the full-scale versions.
package kgvote

import (
	"sync"
	"sync/atomic"
	"testing"

	"kgvote/internal/core"
	"kgvote/internal/harness"
	"kgvote/internal/pathidx"
	"kgvote/internal/qa"
	"kgvote/internal/synth"
)

// benchConfig is the shared reduced-scale configuration.
func benchConfig() harness.Config {
	return harness.Config{
		Seed:             1,
		Topics:           5,
		EntitiesPerTopic: 12,
		Docs:             60,
		EntitiesPerDoc:   5,
		TrainQuestions:   30,
		TestQuestions:    30,
		K:                10,
		L:                3,
		GraphScale:       0.005,
		Votes:            []int{3, 6},
		AnswerCounts:     []int{50, 100, 200},
		Workers:          4,
		TimingQueries:    2,
		Lengths:          []int{2, 3, 4},
	}
}

func benchTable(b *testing.B, fn func(harness.Config) (harness.Table, error)) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tab, err := fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkTableIII regenerates Table III (samples of optimized edge
// weights after the multi-vote solve).
func BenchmarkTableIII(b *testing.B) { benchTable(b, harness.TableIII) }

// BenchmarkTableIV regenerates Table IV (R_avg / Ω_avg / P_avg of the
// original, single-vote, and multi-vote graphs on the test set).
func BenchmarkTableIV(b *testing.B) { benchTable(b, harness.TableIV) }

// BenchmarkTableV regenerates Table V (H@k for IR, random-walk Q&A, and
// the three KG variants).
func BenchmarkTableV(b *testing.B) { benchTable(b, harness.TableV) }

// BenchmarkFigure5 regenerates Fig. 5 (MRR and MAP, whole test set and the
// non-top-1 subset).
func BenchmarkFigure5(b *testing.B) { benchTable(b, harness.Figure5) }

// BenchmarkTableVI regenerates Table VI (per-query similarity-evaluation
// time: random walk vs extended inverse P-distance across |A|).
func BenchmarkTableVI(b *testing.B) { benchTable(b, harness.TableVI) }

// BenchmarkFigure6 regenerates Fig. 6 (elapsed time and Ω_avg vs number of
// votes for multi-vote, split-and-merge, distributed split-and-merge, and
// single-vote) on a scaled Twitter profile.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	profiles := []synth.Profile{synth.Twitter.Scaled(cfg.GraphScale)}
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure6(cfg, profiles)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no measurements")
		}
	}
}

// BenchmarkFigure7PD regenerates Fig. 7(a) (percentage difference of
// cumulative similarity mass across consecutive L).
func BenchmarkFigure7PD(b *testing.B) {
	cfg := benchConfig()
	profiles := []synth.Profile{synth.Digg.Scaled(cfg.GraphScale)}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure7PD(cfg, profiles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Time regenerates Fig. 7(b) (optimization time vs L).
func BenchmarkFigure7Time(b *testing.B) {
	cfg := benchConfig()
	profiles := []synth.Profile{synth.Digg.Scaled(cfg.GraphScale)}
	for i := 0; i < b.N; i++ {
		if _, err := harness.Figure7Time(cfg, profiles); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates Fig. 2 (step vs sigmoid).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := harness.Figure2(); len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblationReducedMultiVote compares the full augmented-Lagrangian
// multi-vote solve against the reduced deviation-eliminated form.
func BenchmarkAblationReducedMultiVote(b *testing.B) { benchTable(b, harness.AblationSolverMode) }

// BenchmarkAblationMerge compares the paper's vote-weighted sign/max merge
// rule against plain averaging.
func BenchmarkAblationMerge(b *testing.B) { benchTable(b, harness.AblationMergeRule) }

// BenchmarkAblationScorer compares explicit walk enumeration against the
// truncated power-series sweep.
func BenchmarkAblationScorer(b *testing.B) { benchTable(b, harness.AblationScorer) }

// BenchmarkAblationNormalize compares post-solve normalization modes.
func BenchmarkAblationNormalize(b *testing.B) { benchTable(b, harness.AblationNormalize) }

// --- Serving-path benchmarks (DESIGN.md §"Serving architecture") ---

// benchServeSystem builds a fixed synthetic corpus plus question stream
// for the ask benchmarks. The rank cache is disabled so sequential and
// parallel compare sweep against sweep, not sweep against cache hit.
func benchServeSystem(b *testing.B) (*qa.System, []qa.Question) {
	b.Helper()
	corpus, err := synth.GenerateCorpus(synth.CorpusConfig{Docs: 120, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	questions, err := synth.GenerateQuestions(corpus, synth.QuestionConfig{N: 256, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	sys, err := qa.Build(corpus, core.Options{K: 10, L: 4, RankCacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	return sys, questions
}

// BenchmarkAskSequential is the legacy serving path: every ask attaches a
// query node to the shared graph and ranks under the writer mutex, the
// way the pre-snapshot server serialized all requests.
func BenchmarkAskSequential(b *testing.B) {
	sys, questions := benchServeSystem(b)
	var mu sync.Mutex
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		_, _, err := sys.Ask(questions[i%len(questions)])
		mu.Unlock()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAskParallel is the snapshot serving path: virtual seed vectors
// ranked against the published CSR from concurrent goroutines, no lock
// and no graph mutation.
func BenchmarkAskParallel(b *testing.B) {
	sys, questions := benchServeSystem(b)
	var idx atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(idx.Add(1)) - 1
			if _, _, err := sys.RankSnapshot(questions[i%len(questions)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotScoring isolates the steady-state scoring loop — a
// pooled scorer ranking a pre-seeded question into a reused buffer. The
// design target is 0 allocs/op.
func BenchmarkSnapshotScoring(b *testing.B) {
	sys, questions := benchServeSystem(b)
	ids, ws, _, err := sys.Seed(questions[0])
	if err != nil {
		b.Fatal(err)
	}
	snap := sys.Engine.Serving()
	sc := snap.Pool().Get()
	defer snap.Pool().Put(sc)
	answers := sys.Answers()
	buf := make([]pathidx.Ranked, 0, len(answers))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = sc.RankSeededInto(buf[:0], ids, ws, answers, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
}
